#include "comimo/mc/sharded.h"

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define COMIMO_HAS_FORK 1
#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#else
#define COMIMO_HAS_FORK 0
#endif

namespace comimo {

namespace {

// Pure function of the run configuration — deterministic domain, like
// simd.active_tier.
obs::Gauge& shard_count_gauge() {
  static obs::Gauge g =
      obs::MetricRegistry::global().gauge("mc.shard_count");
  return g;
}

McConfig shard_config(const McConfig& config, std::size_t index,
                      std::size_t shards) {
  McConfig c = config;
  c.shard_index = index;
  c.shard_count = shards;
  c.collect_chunk_accs = true;
  return c;
}

#if COMIMO_HAS_FORK

void write_all(int fd, const std::uint8_t* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      // EPIPE (parent died mid-read, SIGPIPE ignored in workers) and
      // every other write failure surface as an exception the worker's
      // catch-all turns into a clean _exit(1) — never a signal death.
      throw NumericError("shard worker: pipe write failed");
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

std::vector<std::uint8_t> read_until_eof(int fd) {
  std::vector<std::uint8_t> buf;
  std::uint8_t tmp[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, tmp, sizeof(tmp));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw NumericError("shard driver: pipe read failed");
    }
    if (n == 0) break;
    buf.insert(buf.end(), tmp, tmp + n);
  }
  return buf;
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  COMIMO_CHECK(pos + 8 <= in.size(), "truncated shard wire image");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 8;
  return v;
}

#endif  // COMIMO_HAS_FORK

using RunFn = std::function<McResult(const McConfig&)>;

/// The shared driver: runs shard s's chunk range via `run_one` (one
/// worker process per shard when forking), gathers every executed
/// (global chunk ordinal, accumulator) pair, and folds them in
/// ascending ordinal — the exact reduction sequence of the unsharded
/// engine, hence bit-identical output.
McResult run_sharded(std::size_t trials, const McConfig& config,
                     const ShardOptions& options, const RunFn& run_one) {
  COMIMO_CHECK(options.shards >= 1, "need at least one shard");
  shard_count_gauge().set(static_cast<double>(options.shards));
  if (options.shards == 1) return run_one(config);

  const auto t0 = std::chrono::steady_clock::now();
  McResult out;
  out.info.trials = trials;
  if (trials > 0) {
    const std::size_t chunk = resolve_chunk_size(trials, config.chunk_size);
    out.info.chunks = (trials + chunk - 1) / chunk;
  }

  // Contiguous shard ranges visited in shard order arrive already
  // sorted by global chunk ordinal.
  std::vector<std::pair<std::size_t, McAccumulator>> chunk_accs;

  bool forked = false;
#if COMIMO_HAS_FORK
  if (options.fork) {
    forked = true;
    // The parent pool's worker threads do not survive fork; children
    // run their chunk range inline (see below).  Resolve the parent
    // size up front for the report envelope (this may instantiate the
    // shared pool — in the parent, before any fork).
    ThreadPool& parent_pool =
        config.pool ? *config.pool : ThreadPool::shared();
    const unsigned pool_threads = parent_pool.size();
    out.info.threads = pool_threads;

    struct Worker {
      pid_t pid = -1;
      int read_fd = -1;
    };
    std::vector<Worker> workers;
    workers.reserve(options.shards);

    // Reap-everything cleanup for a failed spawn loop: no zombies, no
    // leaked pipe fds, regardless of where pipe()/fork() failed.
    const auto kill_and_reap_all = [&workers]() noexcept {
      for (const Worker& w : workers) {
        if (w.read_fd >= 0) ::close(w.read_fd);
        if (w.pid > 0) {
          ::kill(w.pid, SIGKILL);
          int status = 0;
          pid_t waited = -1;
          do {
            waited = ::waitpid(w.pid, &status, 0);
          } while (waited < 0 && errno == EINTR);
        }
      }
      workers.clear();
    };

    {
      // Hold-and-fork: quiesce the parent's pool and serialize the obs
      // registry (registry mutex + every gauge cell) across the whole
      // fork loop.  Any of those mutexes held by a *live parent thread*
      // at fork() would be locked forever in the child — the child's
      // first obs gauge set or histogram fold in run_one would
      // deadlock.  Holding them ourselves puts them in a known state
      // the child releases explicitly below.
      std::unique_lock<std::mutex> pool_lock =
          parent_pool.quiesce_for_fork();
      obs::MetricRegistry::ForkGuard obs_guard(
          obs::MetricRegistry::global());
      for (std::size_t s = 0; s < options.shards; ++s) {
        int fds[2];
        if (::pipe(fds) != 0) {
          kill_and_reap_all();
          throw NumericError("shard driver: pipe failed");
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
          ::close(fds[0]);
          ::close(fds[1]);
          kill_and_reap_all();
          throw NumericError("shard driver: fork failed");
        }
        if (pid == 0) {
          // Worker process: a single-threaded copy of the forking
          // thread.  Release the inherited hold-and-fork locks (legal:
          // this thread is the one that took them), then ignore
          // SIGPIPE so a dead parent turns pipe writes into EPIPE —
          // handled as a clean _exit(1), never a signal death the
          // parent would have to treat as a crash.
          pool_lock.unlock();
          obs_guard.unlock_in_child();
          ::signal(SIGPIPE, SIG_IGN);
          // Run this shard's chunk range and ship the per-chunk
          // accumulators back.  _exit skips static destructors — the
          // parent owns the process state.
          ::close(fds[0]);
          int status = 0;
          try {
            McConfig child = shard_config(config, s, options.shards);
            // Never create threads after fork(): a parent thread can
            // hold a runtime-internal lock (allocator, sanitizer thread
            // registry) at the fork instant, and a child pthread_create
            // deadlocks on the inherited copy.  The inline pool runs
            // the shard's chunks serially on this (only) thread — the
            // chunk partition and fold order are pool-size invariant,
            // so the bits cannot change.
            ThreadPool child_pool{ThreadPool::Inline{}};
            child.pool = &child_pool;
            const McResult r = run_one(child);
            std::vector<std::uint8_t> buf;
            put_u64(buf, r.chunk_accs.size());
            for (const auto& [ordinal, acc] : r.chunk_accs) {
              put_u64(buf, ordinal);
              acc.serialize(buf);
            }
            write_all(fds[1], buf.data(), buf.size());
          } catch (...) {
            status = 1;
          }
          ::close(fds[1]);
          ::_exit(status);
        }
        ::close(fds[1]);
        workers.push_back(Worker{pid, fds[0]});
      }
    }  // parent releases the pool lock + obs guard; children run free

    // Drain and reap EVERY worker before judging any of them: a failed
    // worker must not leave zombies or open pipes behind the exception.
    std::vector<std::vector<std::uint8_t>> bufs(workers.size());
    std::vector<bool> read_ok(workers.size(), true);
    for (std::size_t i = 0; i < workers.size(); ++i) {
      try {
        bufs[i] = read_until_eof(workers[i].read_fd);
      } catch (...) {
        read_ok[i] = false;
      }
      ::close(workers[i].read_fd);
    }
    std::string failure;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      int status = 0;
      pid_t waited = -1;
      do {
        waited = ::waitpid(workers[i].pid, &status, 0);
      } while (waited < 0 && errno == EINTR);
      std::string worker_failure;
      if (waited != workers[i].pid) {
        worker_failure = "waitpid failed";
      } else if (WIFSIGNALED(status)) {
        worker_failure =
            "killed by signal " + std::to_string(WTERMSIG(status));
      } else if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        worker_failure =
            "exited with status " +
            std::to_string(WIFEXITED(status) ? WEXITSTATUS(status) : -1);
      } else if (!read_ok[i]) {
        worker_failure = "pipe read failed";
      } else {
        try {
          std::size_t pos = 0;
          const std::uint64_t n_chunks = get_u64(bufs[i], pos);
          std::vector<std::pair<std::size_t, McAccumulator>> parsed;
          for (std::uint64_t c = 0; c < n_chunks; ++c) {
            const std::size_t ordinal =
                static_cast<std::size_t>(get_u64(bufs[i], pos));
            parsed.emplace_back(ordinal,
                                McAccumulator::deserialize(bufs[i], pos));
          }
          COMIMO_CHECK(pos == bufs[i].size(),
                       "trailing bytes in shard wire image");
          for (auto& entry : parsed) {
            chunk_accs.push_back(std::move(entry));
          }
        } catch (const std::exception& e) {
          // A worker that died mid-write (or wrote garbage) produces a
          // truncated image; that is a worker failure, not a
          // process-fatal contract violation.
          worker_failure = std::string("malformed wire image (") +
                           e.what() + ")";
        }
      }
      if (!worker_failure.empty() && failure.empty()) {
        failure =
            "shard worker " + std::to_string(i) + ": " + worker_failure;
      }
    }
    if (!failure.empty()) throw ShardWorkerError(failure);
  }
#endif  // COMIMO_HAS_FORK
  if (!forked) {
    // Portable fallback: the same shard ranges, sequentially in this
    // process.  Same chunk partition, same fold order, same bits.
    for (std::size_t s = 0; s < options.shards; ++s) {
      McResult r = run_one(shard_config(config, s, options.shards));
      out.info.threads = r.info.threads;
      for (auto& entry : r.chunk_accs) {
        chunk_accs.push_back(std::move(entry));
      }
    }
  }

  for (const auto& [ordinal, acc] : chunk_accs) {
    (void)ordinal;
    out.acc.merge(acc);
  }
  if (config.collect_chunk_accs) out.chunk_accs = std::move(chunk_accs);

  const auto t1 = std::chrono::steady_clock::now();
  out.info.wall_s = std::chrono::duration<double>(t1 - t0).count();
  out.info.trials_per_sec =
      out.info.wall_s > 0.0
          ? static_cast<double>(trials) / out.info.wall_s
          : 0.0;
  return out;
}

}  // namespace

McResult run_trials_sharded(
    std::size_t trials, const McConfig& config, const ShardOptions& options,
    const std::function<void(std::size_t, Rng&, McAccumulator&)>& trial) {
  return run_sharded(trials, config, options,
                     [&](const McConfig& c) {
                       return run_trials(trials, c, trial);
                     });
}

McResult run_trial_batches_sharded(
    std::size_t trials, const McConfig& config, const ShardOptions& options,
    std::size_t max_batch,
    const std::function<void(std::size_t, std::size_t, Rng*, McAccumulator&)>&
        batch) {
  return run_sharded(trials, config, options,
                     [&](const McConfig& c) {
                       return run_trial_batches(trials, c, max_batch, batch);
                     });
}

}  // namespace comimo
