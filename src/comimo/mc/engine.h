// The Monte-Carlo sweep engine.
//
// run_trials shards [0, trials) into fixed-size chunks, executes the
// chunks across a ThreadPool, and merges one McAccumulator per chunk in
// ascending chunk order.  The determinism contract:
//
//   * every trial derives all of its randomness from Rng(seed, trial) —
//     a counter-based stream, never a shared generator — so a trial's
//     result is a pure function of (seed, trial index);
//   * the chunk partition depends only on (trials, chunk_size), never on
//     the worker count, and chunk accumulators merge in chunk order;
//   * therefore the merged accumulator is bit-identical on 1 or N
//     threads, for any pool, for any scheduling — asserted by
//     tests/test_mc_engine.cpp.
//
// A trial that needs several independent streams splits its Rng by
// drawing sub-seeds (rng.next()) or by constructing Rng(sub_seed, tag)
// from them; it must never touch state outside its accumulator.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "comimo/common/parallel.h"
#include "comimo/mc/accumulator.h"
#include "comimo/numeric/rng.h"

namespace comimo {

struct McConfig {
  std::uint64_t seed = 1;
  /// Trials per shard; 0 picks ceil(trials / 1024) (at most 1024 shards)
  /// — a function of the trial count only, never of the worker count.
  /// Changing chunk_size regroups the Welford reduction and may move
  /// merged moments by an ulp; counters are exact for every chunking.
  std::size_t chunk_size = 0;
  /// Pool to execute on; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
  /// Multi-process sharding (mc/sharded.h): this run executes only the
  /// contiguous chunk range [chunks·i/n, chunks·(i+1)/n) for shard
  /// i = shard_index of n = shard_count.  The chunk partition itself is
  /// global — a pure function of (trials, chunk_size) — so the union of
  /// every shard's per-chunk accumulators, folded in ascending global
  /// chunk ordinal, is bit-identical to the unsharded run.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Chunk-ordinal execution window [chunk_window_begin,
  /// chunk_window_end) over the *global* chunk partition (clamped to
  /// [0, chunks]).  The partition itself never moves — a windowed run
  /// executes exactly the chunks the full run would have executed at
  /// those ordinals, with the same Rng(seed, trial) streams, so folding
  /// consecutive windows in ascending ordinal reproduces the full run
  /// bit for bit.  This is the primitive mc/adaptive.h builds its
  /// checkpoint rounds on.  Sharding splits the window, not the full
  /// range: shard i of n executes [lo + n_win·i/n, lo + n_win·(i+1)/n).
  std::size_t chunk_window_begin = 0;
  std::size_t chunk_window_end = kAllChunks;
  /// When true, McResult::chunk_accs records every executed chunk's
  /// pre-merge accumulator keyed by global chunk ordinal — the transport
  /// the sharding driver folds across processes.
  bool collect_chunk_accs = false;

  static constexpr std::size_t kAllChunks = ~static_cast<std::size_t>(0);
};

struct McRunInfo {
  std::size_t trials = 0;
  std::size_t chunks = 0;
  unsigned threads = 0;
  double wall_s = 0.0;
  double trials_per_sec = 0.0;
};

struct McResult {
  McAccumulator acc;
  McRunInfo info;
  /// Executed (global chunk ordinal, accumulator) pairs in ascending
  /// ordinal order; empty unless McConfig::collect_chunk_accs.
  std::vector<std::pair<std::size_t, McAccumulator>> chunk_accs;
};

/// Runs `trial(trial_index, rng, acc)` for every index in [0, trials)
/// and returns the order-independent reduction.  `trial` must be safe to
/// call concurrently for distinct indices and must draw randomness only
/// from the provided Rng (stream = trial index of `config.seed`).
[[nodiscard]] McResult run_trials(
    std::size_t trials, const McConfig& config,
    const std::function<void(std::size_t, Rng&, McAccumulator&)>& trial);

/// The chunk partition run_trials uses: resolved shard size for a given
/// trial count (exposed so tests can cross-check the contract).
[[nodiscard]] std::size_t resolve_chunk_size(std::size_t trials,
                                             std::size_t chunk_size) noexcept;

/// Batched variant for SIMD trial kernels: consecutive trials within a
/// chunk are grouped up to `max_batch` wide and handed to
/// `batch(first_trial, count, rngs, acc)` with one Rng per trial
/// (rngs[i] streams trial first_trial + i).  The grouping is a pure
/// function of the chunk bounds and max_batch — never of the worker
/// count — and groups never straddle a chunk boundary, so the
/// determinism contract of run_trials carries over verbatim: a batch
/// whose per-trial results match the scalar trial's makes the merged
/// accumulator bit-identical to run_trials on 1 or N threads.
/// max_batch is clamped to [1, 8]; the trailing group of a chunk may be
/// narrower than max_batch (the tail the batch kernel handles).
[[nodiscard]] McResult run_trial_batches(
    std::size_t trials, const McConfig& config, std::size_t max_batch,
    const std::function<void(std::size_t, std::size_t, Rng*, McAccumulator&)>&
        batch);

}  // namespace comimo
