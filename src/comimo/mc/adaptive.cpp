#include "comimo/mc/adaptive.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "comimo/common/error.h"
#include "comimo/numeric/special.h"
#include "comimo/obs/metrics.h"

namespace comimo {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Checkpoint counts, trials executed/saved, and the achieved CI are all
// pure functions of (seed, config) — deterministic domain, diffed across
// thread counts by check_bench_json.sh.
struct AdaptiveObs {
  obs::Counter runs =
      obs::MetricRegistry::global().counter("mc.adaptive.runs");
  obs::Counter checkpoints =
      obs::MetricRegistry::global().counter("mc.adaptive.checkpoints");
  obs::Counter trials =
      obs::MetricRegistry::global().counter("mc.adaptive.trials");
  obs::Counter trials_saved =
      obs::MetricRegistry::global().counter("mc.adaptive.trials_saved");
  obs::Gauge rel_ci =
      obs::MetricRegistry::global().gauge("mc.adaptive.rel_ci");
};

AdaptiveObs& adaptive_obs() {
  static AdaptiveObs o;
  return o;
}

using RoundFn = std::function<McResult(std::size_t, const McConfig&)>;

/// The shared checkpoint loop.  `run_round` executes one chunk window of
/// the budget's global partition (the window is already set on the
/// config it receives) and must return per-chunk accumulators
/// (collect_chunk_accs is forced on) so the driver can fold them in
/// ascending global ordinal — the exact reduction sequence of the fixed
/// run, which is what makes an exhausted-budget adaptive run
/// bit-identical to run_trials(budget, ...).
AdaptiveResult run_adaptive(std::size_t trials, const McConfig& config,
                            const AdaptiveConfig& adaptive,
                            const StopRule& rule, const RoundFn& run_round) {
  COMIMO_CHECK(adaptive.target_rel_ci > 0.0,
               "adaptive stopping requires target_rel_ci > 0");
  COMIMO_CHECK(!rule.stat.empty(), "adaptive stopping requires a stop stat");
  const std::size_t budget =
      adaptive.max_trials > 0 ? adaptive.max_trials : trials;
  const double z = confidence_z(adaptive.confidence);

  AdaptiveResult out;
  out.trials_budget = budget;
  out.rel_ci = kInf;
  out.mc.info.trials = 0;
  if (budget == 0) return out;

  const std::size_t chunk = resolve_chunk_size(budget, config.chunk_size);
  const std::size_t chunks = (budget + chunk - 1) / chunk;
  const std::size_t every =
      resolve_checkpoint_every(chunks, adaptive.checkpoint_every);

  std::size_t next = 0;
  while (next < chunks) {
    const std::size_t hi = std::min(chunks, next + every);
    McConfig round = config;
    round.chunk_window_begin = next;
    round.chunk_window_end = hi;
    round.collect_chunk_accs = true;
    McResult r = run_round(budget, round);
    // Fold the round's chunks in ascending global ordinal.  The rounds
    // themselves arrive in ascending window order, so the overall fold
    // is the fixed run's sequence exactly.
    for (const auto& [ordinal, acc] : r.chunk_accs) {
      (void)ordinal;
      out.mc.acc.merge(acc);
    }
    out.trials_executed += std::min(budget, hi * chunk) - next * chunk;
    out.mc.info.threads = r.info.threads;
    out.mc.info.wall_s += r.info.wall_s;
    next = hi;
    ++out.checkpoints;
    out.rel_ci = stop_rel_ci(out.mc.acc, rule, z, adaptive.min_events);
    if (out.trials_executed >= adaptive.min_trials &&
        out.rel_ci <= adaptive.target_rel_ci) {
      out.target_met = true;
      break;
    }
  }

  out.mc.info.trials = out.trials_executed;
  out.mc.info.chunks = next;
  out.mc.info.trials_per_sec =
      out.mc.info.wall_s > 0.0
          ? static_cast<double>(out.trials_executed) / out.mc.info.wall_s
          : 0.0;

  AdaptiveObs& aobs = adaptive_obs();
  aobs.runs.add();
  aobs.checkpoints.add(out.checkpoints);
  aobs.trials.add(out.trials_executed);
  aobs.trials_saved.add(budget - out.trials_executed);
  if (std::isfinite(out.rel_ci)) aobs.rel_ci.set(out.rel_ci);
  return out;
}

}  // namespace

double confidence_z(double confidence) {
  COMIMO_CHECK(confidence > 0.0 && confidence < 1.0,
               "confidence must be in (0, 1)");
  return q_inverse((1.0 - confidence) / 2.0);
}

std::size_t resolve_checkpoint_every(std::size_t chunks,
                                     std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(1, chunks / 32);
}

double rate_rel_ci(std::uint64_t num, std::uint64_t den, double z) {
  if (num == 0 || den == 0 || num >= den) return kInf;
  const double p = static_cast<double>(num) / static_cast<double>(den);
  // Half-width of the normal interval on p, relative to p:
  // z·sqrt(p(1−p)/den) / p = z·sqrt((1−p)/num).
  return z * std::sqrt((1.0 - p) / static_cast<double>(num));
}

double stop_rel_ci(const McAccumulator& acc, const StopRule& rule, double z,
                   std::size_t min_events) {
  if (!rule.denominator.empty()) {
    const std::uint64_t num = acc.counter(rule.stat);
    if (num < min_events) return kInf;
    return rate_rel_ci(num, acc.counter(rule.denominator), z);
  }
  const RunningStats& s = acc.stat(rule.stat);
  if (s.count() < 2 || s.mean() == 0.0) return kInf;
  const double rel = z * s.std_error() / std::abs(s.mean());
  return std::isfinite(rel) ? rel : kInf;
}

AdaptiveResult run_trials_adaptive(
    std::size_t trials, const McConfig& config,
    const AdaptiveConfig& adaptive, const StopRule& rule,
    const ShardOptions& shard_options,
    const std::function<void(std::size_t, Rng&, McAccumulator&)>& trial) {
  return run_adaptive(
      trials, config, adaptive, rule,
      [&](std::size_t budget, const McConfig& round) {
        return run_trials_sharded(budget, round, shard_options, trial);
      });
}

AdaptiveResult run_trial_batches_adaptive(
    std::size_t trials, const McConfig& config,
    const AdaptiveConfig& adaptive, const StopRule& rule,
    const ShardOptions& shard_options, std::size_t max_batch,
    const std::function<void(std::size_t, std::size_t, Rng*, McAccumulator&)>&
        batch) {
  return run_adaptive(
      trials, config, adaptive, rule,
      [&](std::size_t budget, const McConfig& round) {
        return run_trial_batches_sharded(budget, round, shard_options,
                                         max_batch, batch);
      });
}

}  // namespace comimo
