#include "comimo/mc/engine.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/obs/trace.h"

namespace comimo {

namespace {

// Engine-level observability (cold registration, hot no-op when
// disabled).  Trial/chunk totals are pure functions of (trials,
// chunk_size) — deterministic domain; timing is not.
struct EngineObs {
  obs::Counter trials = obs::MetricRegistry::global().counter("mc.trials");
  obs::Counter chunks = obs::MetricRegistry::global().counter("mc.chunks");
  obs::Counter runs = obs::MetricRegistry::global().counter("mc.runs");
  obs::Histogram chunk_wall_s = obs::MetricRegistry::global().histogram(
      "mc.chunk_wall_s", obs::Domain::kRuntime);
  obs::Gauge trials_per_sec = obs::MetricRegistry::global().gauge(
      "mc.trials_per_sec", obs::Domain::kRuntime);
};

EngineObs& engine_obs() {
  static EngineObs o;
  return o;
}

/// The contiguous global-chunk range [lo, hi) this run executes, plus
/// the trial count inside it.  shard_count == 1 degenerates to the full
/// range, so the unsharded path is bit-for-bit the historical one.
struct ShardRange {
  std::size_t lo = 0;
  std::size_t hi = 0;
  std::size_t executed_trials = 0;
};

ShardRange resolve_shard_range(const McConfig& config, std::size_t trials,
                               std::size_t chunk, std::size_t chunks) {
  COMIMO_CHECK(config.shard_count >= 1, "shard_count must be >= 1");
  COMIMO_CHECK(config.shard_index < config.shard_count,
               "shard_index must be < shard_count");
  COMIMO_CHECK(config.chunk_window_begin <= config.chunk_window_end,
               "chunk window must be a valid range");
  // The execution window over the global partition (default: all of
  // it), then this shard's slice of the window.  Both are pure
  // functions of the config — never of the executing pool.
  const std::size_t win_lo = std::min(config.chunk_window_begin, chunks);
  const std::size_t win_hi = std::min(config.chunk_window_end, chunks);
  const std::size_t win_n = win_hi - win_lo;
  ShardRange r;
  r.lo = win_lo + win_n * config.shard_index / config.shard_count;
  r.hi = win_lo + win_n * (config.shard_index + 1) / config.shard_count;
  if (r.hi > r.lo) {
    r.executed_trials = std::min(trials, r.hi * chunk) - r.lo * chunk;
  }
  return r;
}

}  // namespace

std::size_t resolve_chunk_size(std::size_t trials,
                               std::size_t chunk_size) noexcept {
  if (chunk_size > 0) return chunk_size;
  // At most 1024 shards: enough parallel slack for any realistic core
  // count while keeping the merge chain short.  Depends only on the
  // trial count, never on the executing pool.
  return std::max<std::size_t>(1, (trials + 1023) / 1024);
}

McResult run_trials(
    std::size_t trials, const McConfig& config,
    const std::function<void(std::size_t, Rng&, McAccumulator&)>& trial) {
  COMIMO_CHECK(trial != nullptr, "null trial function");
  ThreadPool& pool = config.pool ? *config.pool : ThreadPool::shared();

  McResult result;
  result.info.trials = trials;
  result.info.threads = pool.size();
  if (trials == 0) return result;

  const std::size_t chunk = resolve_chunk_size(trials, config.chunk_size);
  const std::size_t chunks = (trials + chunk - 1) / chunk;
  result.info.chunks = chunks;
  const ShardRange range = resolve_shard_range(config, trials, chunk, chunks);
  const std::size_t n_exec = range.hi - range.lo;

  EngineObs& eobs = engine_obs();
  eobs.runs.add();
  eobs.trials.add(range.executed_trials);
  eobs.chunks.add(n_exec);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<McAccumulator> shards(n_exec);
  parallel_for(pool, n_exec, [&](std::size_t idx) {
    // Chunk-ordinal shard scope (global ordinal, even under process
    // sharding): deterministic metrics the trial code observes (per-hop
    // BER, retries, backoff) merge in chunk order — the same discipline
    // as the McAccumulator reduction below — so the exported aggregates
    // are worker-count invariant.
    const std::size_t c = range.lo + idx;
    const obs::ObsShard shard(c);
    const obs::SpanTimer span("mc.chunk", eobs.chunk_wall_s);
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(trials, begin + chunk);
    McAccumulator& acc = shards[idx];
    for (std::size_t t = begin; t < end; ++t) {
      Rng rng(config.seed, t);
      trial(t, rng, acc);
    }
  });
  // Merge in ascending shard order — the reduction order is part of the
  // determinism contract.
  for (std::size_t idx = 0; idx < n_exec; ++idx) {
    result.acc.merge(shards[idx]);
  }
  if (config.collect_chunk_accs) {
    result.chunk_accs.reserve(n_exec);
    for (std::size_t idx = 0; idx < n_exec; ++idx) {
      result.chunk_accs.emplace_back(range.lo + idx, std::move(shards[idx]));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.info.wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  result.info.trials_per_sec =
      result.info.wall_s > 0.0
          ? static_cast<double>(range.executed_trials) / result.info.wall_s
          : 0.0;
  eobs.trials_per_sec.set(result.info.trials_per_sec);
  return result;
}

McResult run_trial_batches(
    std::size_t trials, const McConfig& config, std::size_t max_batch,
    const std::function<void(std::size_t, std::size_t, Rng*, McAccumulator&)>&
        batch) {
  COMIMO_CHECK(batch != nullptr, "null batch function");
  max_batch = std::clamp<std::size_t>(max_batch, 1, 8);
  ThreadPool& pool = config.pool ? *config.pool : ThreadPool::shared();

  McResult result;
  result.info.trials = trials;
  result.info.threads = pool.size();
  if (trials == 0) return result;

  const std::size_t chunk = resolve_chunk_size(trials, config.chunk_size);
  const std::size_t chunks = (trials + chunk - 1) / chunk;
  result.info.chunks = chunks;
  const ShardRange range = resolve_shard_range(config, trials, chunk, chunks);
  const std::size_t n_exec = range.hi - range.lo;

  EngineObs& eobs = engine_obs();
  eobs.runs.add();
  eobs.trials.add(range.executed_trials);
  eobs.chunks.add(n_exec);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<McAccumulator> shards(n_exec);
  parallel_for(pool, n_exec, [&](std::size_t idx) {
    const std::size_t c = range.lo + idx;
    const obs::ObsShard shard(c);
    const obs::SpanTimer span("mc.chunk", eobs.chunk_wall_s);
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(trials, begin + chunk);
    McAccumulator& acc = shards[idx];
    // One generator per trial, materialized per group; Rng has no
    // default constructor, so the group's streams live in a vector
    // whose capacity is reused across groups (one allocation per chunk,
    // outside any per-block zero-alloc window).
    std::vector<Rng> rngs;
    rngs.reserve(max_batch);
    for (std::size_t t = begin; t < end; t += max_batch) {
      const std::size_t count = std::min(max_batch, end - t);
      rngs.clear();
      for (std::size_t i = 0; i < count; ++i) {
        rngs.emplace_back(config.seed, t + i);
      }
      batch(t, count, rngs.data(), acc);
    }
  });
  for (std::size_t idx = 0; idx < n_exec; ++idx) {
    result.acc.merge(shards[idx]);
  }
  if (config.collect_chunk_accs) {
    result.chunk_accs.reserve(n_exec);
    for (std::size_t idx = 0; idx < n_exec; ++idx) {
      result.chunk_accs.emplace_back(range.lo + idx, std::move(shards[idx]));
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.info.wall_s = std::chrono::duration<double>(t1 - t0).count();
  result.info.trials_per_sec =
      result.info.wall_s > 0.0
          ? static_cast<double>(range.executed_trials) / result.info.wall_s
          : 0.0;
  eobs.trials_per_sec.set(result.info.trials_per_sec);
  return result;
}

}  // namespace comimo
