#include "comimo/mc/engine.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "comimo/common/error.h"

namespace comimo {

std::size_t resolve_chunk_size(std::size_t trials,
                               std::size_t chunk_size) noexcept {
  if (chunk_size > 0) return chunk_size;
  // At most 1024 shards: enough parallel slack for any realistic core
  // count while keeping the merge chain short.  Depends only on the
  // trial count, never on the executing pool.
  return std::max<std::size_t>(1, (trials + 1023) / 1024);
}

McResult run_trials(
    std::size_t trials, const McConfig& config,
    const std::function<void(std::size_t, Rng&, McAccumulator&)>& trial) {
  COMIMO_CHECK(trial != nullptr, "null trial function");
  ThreadPool& pool = config.pool ? *config.pool : ThreadPool::shared();

  McResult result;
  result.info.trials = trials;
  result.info.threads = pool.size();
  if (trials == 0) return result;

  const std::size_t chunk = resolve_chunk_size(trials, config.chunk_size);
  const std::size_t chunks = (trials + chunk - 1) / chunk;
  result.info.chunks = chunks;

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<McAccumulator> shards(chunks);
  parallel_for(pool, chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(trials, begin + chunk);
    McAccumulator& acc = shards[c];
    for (std::size_t t = begin; t < end; ++t) {
      Rng rng(config.seed, t);
      trial(t, rng, acc);
    }
  });
  // Merge in ascending shard order — the reduction order is part of the
  // determinism contract.
  for (std::size_t c = 0; c < chunks; ++c) {
    result.acc.merge(shards[c]);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.info.wall_s =
      std::chrono::duration<double>(t1 - t0).count();
  result.info.trials_per_sec =
      result.info.wall_s > 0.0
          ? static_cast<double>(trials) / result.info.wall_s
          : 0.0;
  return result;
}

}  // namespace comimo
