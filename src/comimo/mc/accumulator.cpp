#include "comimo/mc/accumulator.h"

#include <cstring>

#include "comimo/common/error.h"

namespace comimo {

namespace {
const RunningStats kEmptyStats{};

// Fixed-width little-endian primitives.  Doubles travel as IEEE-754 bit
// patterns (memcpy through uint64), so serialize/deserialize round-trips
// every value bit-exactly — including the Welford m2 terms whose last
// ulp the determinism contract cares about.
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  put_u64(out, bits);
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  COMIMO_CHECK(pos + 8 <= in.size(), "truncated accumulator wire image");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[pos + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos += 8;
  return v;
}

double get_f64(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  const std::uint64_t bits = get_u64(in, pos);
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::string get_string(const std::vector<std::uint8_t>& in,
                       std::size_t& pos) {
  const std::uint64_t len = get_u64(in, pos);
  COMIMO_CHECK(pos + len <= in.size(), "truncated accumulator wire image");
  std::string s(reinterpret_cast<const char*>(in.data() + pos),
                static_cast<std::size_t>(len));
  pos += static_cast<std::size_t>(len);
  return s;
}
}  // namespace

void McAccumulator::count(const std::string& name, std::uint64_t n) {
  counters_[name] += n;
}

void McAccumulator::observe(const std::string& name, double x) {
  stats_[name].add(x);
}

std::uint64_t McAccumulator::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const RunningStats& McAccumulator::stat(const std::string& name) const {
  const auto it = stats_.find(name);
  return it == stats_.end() ? kEmptyStats : it->second;
}

RateEstimate McAccumulator::rate(const std::string& numerator,
                                 const std::string& denominator) const {
  const std::uint64_t denom = counter(denominator);
  if (denom == 0) return RateEstimate{};
  // estimate_rate takes uint64_t, so 32-bit-size_t platforms no longer
  // truncate large bit counts on the way in.
  return estimate_rate(counter(numerator), denom);
}

void McAccumulator::merge(const McAccumulator& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, stats] : other.stats_) {
    stats_[name].merge(stats);
  }
}

std::vector<std::string> McAccumulator::counter_names() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, value] : counters_) names.push_back(name);
  return names;
}

void McAccumulator::serialize(std::vector<std::uint8_t>& out) const {
  put_u64(out, counters_.size());
  for (const auto& [name, value] : counters_) {
    put_string(out, name);
    put_u64(out, value);
  }
  put_u64(out, stats_.size());
  for (const auto& [name, stats] : stats_) {
    put_string(out, name);
    const RunningStats::Raw raw = stats.raw();
    put_u64(out, raw.n);
    put_f64(out, raw.mean);
    put_f64(out, raw.m2);
    put_f64(out, raw.min);
    put_f64(out, raw.max);
  }
}

McAccumulator McAccumulator::deserialize(const std::vector<std::uint8_t>& in,
                                         std::size_t& pos) {
  McAccumulator acc;
  const std::uint64_t n_counters = get_u64(in, pos);
  for (std::uint64_t i = 0; i < n_counters; ++i) {
    std::string name = get_string(in, pos);
    acc.counters_[std::move(name)] = get_u64(in, pos);
  }
  const std::uint64_t n_stats = get_u64(in, pos);
  for (std::uint64_t i = 0; i < n_stats; ++i) {
    std::string name = get_string(in, pos);
    RunningStats::Raw raw;
    raw.n = static_cast<std::size_t>(get_u64(in, pos));
    raw.mean = get_f64(in, pos);
    raw.m2 = get_f64(in, pos);
    raw.min = get_f64(in, pos);
    raw.max = get_f64(in, pos);
    acc.stats_[std::move(name)] = RunningStats::from_raw(raw);
  }
  return acc;
}

std::vector<std::string> McAccumulator::stat_names() const {
  std::vector<std::string> names;
  names.reserve(stats_.size());
  for (const auto& [name, stats] : stats_) names.push_back(name);
  return names;
}

}  // namespace comimo
