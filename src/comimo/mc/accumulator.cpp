#include "comimo/mc/accumulator.h"

namespace comimo {

namespace {
const RunningStats kEmptyStats{};
}  // namespace

void McAccumulator::count(const std::string& name, std::uint64_t n) {
  counters_[name] += n;
}

void McAccumulator::observe(const std::string& name, double x) {
  stats_[name].add(x);
}

std::uint64_t McAccumulator::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const RunningStats& McAccumulator::stat(const std::string& name) const {
  const auto it = stats_.find(name);
  return it == stats_.end() ? kEmptyStats : it->second;
}

RateEstimate McAccumulator::rate(const std::string& numerator,
                                 const std::string& denominator) const {
  const std::uint64_t denom = counter(denominator);
  if (denom == 0) return RateEstimate{};
  // estimate_rate takes uint64_t, so 32-bit-size_t platforms no longer
  // truncate large bit counts on the way in.
  return estimate_rate(counter(numerator), denom);
}

void McAccumulator::merge(const McAccumulator& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[name] += value;
  }
  for (const auto& [name, stats] : other.stats_) {
    stats_[name].merge(stats);
  }
}

std::vector<std::string> McAccumulator::counter_names() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, value] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> McAccumulator::stat_names() const {
  std::vector<std::string> names;
  names.reserve(stats_.size());
  for (const auto& [name, stats] : stats_) names.push_back(name);
  return names;
}

}  // namespace comimo
