// Multi-process sharding for the Monte-Carlo engine.
//
// run_trials already makes the reduction a pure function of the global
// chunk partition: chunk accumulators fold in ascending chunk ordinal,
// never in scheduling order.  This driver extends that algebra from
// threads to processes.  Each worker process executes one contiguous
// range of the *global* chunk partition (McConfig::shard_index /
// shard_count — the partition itself never changes), ships its
// per-chunk accumulators back over a pipe as bit-exact wire images
// (mc/accumulator.h), and the parent folds every chunk in ascending
// global ordinal.  Per-chunk transport matters: the Welford merge is
// not associative bitwise, so folding pre-reduced per-shard partials
// would drift by ulps — folding the original chunk sequence reproduces
// the single-process reduction exactly, which is what makes a
// `--shards K` bench envelope byte-identical to `--shards 1`.
//
// Fork workers are POSIX-only; `options.fork = false` (and non-POSIX
// builds) run the shard ranges sequentially in-process — same chunk
// algebra, same bits, no isolation.  Worker processes never touch the
// parent's thread pool (its workers do not survive fork); each child
// builds a private pool of the same size.
#pragma once

#include <cstddef>

#include "comimo/mc/engine.h"

namespace comimo {

struct ShardOptions {
  std::size_t shards = 1;
  /// Fork one worker process per shard (POSIX).  false — or a platform
  /// without fork — executes the shard ranges sequentially in-process;
  /// the merged result is bit-identical either way.
  bool fork = true;
};

/// run_trials across `options.shards` worker processes.  Bit-identical
/// to run_trials(trials, config, trial) for every shard count; shard
/// count 1 *is* that call.  The active shard count is exported as the
/// obs gauge "mc.shard_count".
[[nodiscard]] McResult run_trials_sharded(
    std::size_t trials, const McConfig& config, const ShardOptions& options,
    const std::function<void(std::size_t, Rng&, McAccumulator&)>& trial);

/// run_trial_batches across worker processes; same contract.
[[nodiscard]] McResult run_trial_batches_sharded(
    std::size_t trials, const McConfig& config, const ShardOptions& options,
    std::size_t max_batch,
    const std::function<void(std::size_t, std::size_t, Rng*, McAccumulator&)>&
        batch);

}  // namespace comimo
