// Multi-process sharding for the Monte-Carlo engine.
//
// run_trials already makes the reduction a pure function of the global
// chunk partition: chunk accumulators fold in ascending chunk ordinal,
// never in scheduling order.  This driver extends that algebra from
// threads to processes.  Each worker process executes one contiguous
// range of the *global* chunk partition (McConfig::shard_index /
// shard_count — the partition itself never changes), ships its
// per-chunk accumulators back over a pipe as bit-exact wire images
// (mc/accumulator.h), and the parent folds every chunk in ascending
// global ordinal.  Per-chunk transport matters: the Welford merge is
// not associative bitwise, so folding pre-reduced per-shard partials
// would drift by ulps — folding the original chunk sequence reproduces
// the single-process reduction exactly, which is what makes a
// `--shards K` bench envelope byte-identical to `--shards 1`.
//
// Fork workers are POSIX-only; `options.fork = false` (and non-POSIX
// builds) run the shard ranges sequentially in-process — same chunk
// algebra, same bits, no isolation.  Worker processes never touch the
// parent's thread pool (its workers do not survive fork); each child
// builds a private pool of the same size.
//
// Process-lifetime discipline (the daemon-grade contract):
//   * forks are serialized against live threads: the parent quiesces
//     its pool (ThreadPool::quiesce_for_fork) and holds the obs
//     registry's fork guard across every fork(), so a child can never
//     inherit one of those mutexes locked by a thread that does not
//     exist in the child — the classic fork/threads deadlock;
//   * workers ignore SIGPIPE: a parent that dies mid-read turns the
//     worker's pipe writes into EPIPE, which exits the worker with
//     _exit(1) instead of a process-killing signal;
//   * worker failure is recoverable: every worker is read, reaped, and
//     closed before the driver throws ShardWorkerError — never a
//     COMIMO_CHECK abort — so a long-lived caller survives a bad job.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "comimo/mc/engine.h"

namespace comimo {

/// A shard worker process failed (non-zero exit, killed by a signal, or
/// a malformed wire image from a worker that died mid-write).  This is
/// a *recoverable* per-run error, not a process-fatal contract
/// violation: every worker is reaped and every pipe closed before it is
/// thrown, so a long-lived caller (the service daemon) can fail the one
/// job and keep serving.
class ShardWorkerError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct ShardOptions {
  std::size_t shards = 1;
  /// Fork one worker process per shard (POSIX).  false — or a platform
  /// without fork — executes the shard ranges sequentially in-process;
  /// the merged result is bit-identical either way.
  bool fork = true;
};

/// run_trials across `options.shards` worker processes.  Bit-identical
/// to run_trials(trials, config, trial) for every shard count; shard
/// count 1 *is* that call.  The active shard count is exported as the
/// obs gauge "mc.shard_count".
[[nodiscard]] McResult run_trials_sharded(
    std::size_t trials, const McConfig& config, const ShardOptions& options,
    const std::function<void(std::size_t, Rng&, McAccumulator&)>& trial);

/// run_trial_batches across worker processes; same contract.
[[nodiscard]] McResult run_trial_batches_sharded(
    std::size_t trials, const McConfig& config, const ShardOptions& options,
    std::size_t max_batch,
    const std::function<void(std::size_t, std::size_t, Rng*, McAccumulator&)>&
        batch);

}  // namespace comimo
