// Precision-targeted Monte-Carlo: deterministic early stopping.
//
// A fixed-trial sweep spends the same budget at every operating point,
// so deep-waterfall points (BER ≲ 1e-5) burn millions of trials to
// resolve a handful of bit errors while high-BER points finish in
// milliseconds.  The adaptive driver instead runs the engine in
// checkpoint rounds over the *global* chunk partition and stops as soon
// as a named statistic's confidence interval hits a relative-width
// target.
//
// The determinism contract extends run_trials' verbatim:
//
//   * the chunk partition is the one the full `max_trials` run would
//     use — a pure function of (max_trials, chunk_size) — and each
//     round executes a contiguous chunk-ordinal window of it
//     (McConfig::chunk_window_begin/end), so every executed trial draws
//     from the exact Rng(seed, trial) stream the fixed run would have
//     used;
//   * the stopping rule is evaluated ONLY at checkpoint boundaries —
//     every `checkpoint_every` chunks, itself a pure function of the
//     chunk count — on the fold of all chunks executed so far in
//     ascending global ordinal.  The folded state at a boundary is
//     thread-count and shard-count invariant (same algebra as the
//     McAccumulator merge contract), hence so is the stop/continue
//     decision, hence so is the executed chunk set;
//   * the driver folds per-chunk accumulators (never pre-reduced round
//     partials — the Welford merge is not associative bitwise) in
//     ascending ordinal starting from an empty accumulator: the same
//     reduction sequence as the fixed run.  A run that exhausts
//     max_trials without meeting the target is therefore bit-identical
//     to run_trials(max_trials, ...), and every run is bit-identical at
//     any thread count and across fork sharding.
//
// Rare-event tier: phy/ber_sweep.h layers importance sampling (scaled-
// variance noise with per-trial likelihood weights) on top of this
// driver; see WaveformBerConfig::adaptive and DESIGN.md §9.
#pragma once

#include <cstddef>
#include <string>

#include "comimo/mc/sharded.h"

namespace comimo {

/// Importance-sampling mode for the rare-event BER tier (consumed by
/// phy/ber_sweep.h; the engine-level driver itself is estimator
/// agnostic).
enum class IsMode {
  kOff = 0,
  /// Scaled-variance tilting with per-trial likelihood weights: AWGN is
  /// drawn from CN(0, ν) instead of CN(0, 1) (ν = is_noise_scale ≥ 1)
  /// and the Rayleigh channel from CN(0, 1/λ) (λ = is_channel_scale ≥
  /// 1), weighting each block by the exact density ratio
  ///   w = ν^N·exp(−(1 − 1/ν)·Σ|n|²) · λ^(−Nh)·exp((λ − 1)·Σ|h|²)
  /// so errors occur ~p_tilted/p as often while the weighted estimator
  /// stays unbiased.  In a diversity link the high-SNR errors are
  /// FADE-dominated, not noise-dominated: tilt the channel (λ > 1,
  /// over-sampling deep fades) for the large rare-event gains; a pure
  /// noise tilt samples the wrong rare event and buys little there
  /// (measured in BENCH_adaptive_mc.json's history — see
  /// EXPERIMENTS.md).  Either scale at 1 disables that half of the
  /// tilt; both at 1 reproduces the plain path bit for bit.
  kScaledNoise = 1,
};

struct AdaptiveConfig {
  /// Stop when the stopping statistic's CI half-width divided by its
  /// point estimate is ≤ this.  <= 0 disables adaptive stopping (callers
  /// fall back to the fixed-trial path).
  double target_rel_ci = 0.0;
  /// Two-sided confidence level for the CI (z = q_inverse((1-c)/2)).
  double confidence = 0.95;
  /// Never stop before this many trials have executed (0 = no floor).
  std::size_t min_trials = 0;
  /// Trial budget; 0 uses the sweep's own trial count.  The chunk
  /// partition — and therefore every Rng stream — is derived from this
  /// resolved budget, exactly as a fixed run of the same size would.
  std::size_t max_trials = 0;
  /// A counter-rate stopping rule is not trusted below this many
  /// numerator events regardless of the CI formula (the normal
  /// approximation is garbage at a handful of events).
  std::size_t min_events = 16;
  /// Chunks per checkpoint round; 0 picks max(1, chunks / 32) — a pure
  /// function of the chunk count, never of the worker count.
  std::size_t checkpoint_every = 0;
  /// Rare-event importance sampling (phy/ber_sweep.h).
  IsMode is_mode = IsMode::kOff;
  /// Noise-variance scale ν ≥ 1 for IsMode::kScaledNoise (1 = noise
  /// untilted).
  double is_noise_scale = 2.0;
  /// Fade tilt λ ≥ 1 for IsMode::kScaledNoise: the channel is drawn
  /// from CN(0, 1/λ), over-sampling the deep fades that dominate
  /// high-SNR errors in a diversity link (1 = channel untilted).
  double is_channel_scale = 1.0;
};

/// What the stopping rule watches.  With a non-empty `denominator` the
/// rule is the counter rate stat/denominator (CI half-width
/// z·sqrt((1−p)/(p·den)) relative to p — the BER shape); otherwise
/// `stat` names a RunningStats and the rule is z·std_error/|mean| (the
/// weighted-estimator shape the IS tier uses).
struct StopRule {
  std::string stat;
  std::string denominator;
};

struct AdaptiveResult {
  /// Folded accumulator + aggregate run info.  info.trials/chunks are
  /// the *executed* totals; wall_s sums the rounds.
  McResult mc;
  /// Trials the fixed run would have executed (the resolved budget).
  std::size_t trials_budget = 0;
  /// Trials actually executed (== trials_budget when the target was
  /// never met).
  std::size_t trials_executed = 0;
  /// Checkpoint evaluations performed.
  std::size_t checkpoints = 0;
  /// True when the CI target stopped the run before the budget ran out.
  bool target_met = false;
  /// Relative CI half-width of the stopping statistic at the final
  /// checkpoint (+inf while the statistic is not yet estimable).
  double rel_ci = 0.0;
};

/// z-value of the two-sided interval at the given confidence (0.95 →
/// 1.9599...).
[[nodiscard]] double confidence_z(double confidence);

/// The checkpoint schedule: chunks per round for a partition of `chunks`
/// chunks.  Pure function of its arguments.
[[nodiscard]] std::size_t resolve_checkpoint_every(std::size_t chunks,
                                                   std::size_t requested);

/// Relative CI half-width z·sqrt((1−p)/(num)) of a counter rate
/// num/den; +inf when not estimable (zero counts, p >= 1).
[[nodiscard]] double rate_rel_ci(std::uint64_t num, std::uint64_t den,
                                 double z);

/// The stopping rule evaluated on a folded accumulator; +inf while not
/// estimable (fewer than min_events numerator events for a rate rule,
/// fewer than 2 observations or a zero mean for a stat rule).
[[nodiscard]] double stop_rel_ci(const McAccumulator& acc,
                                 const StopRule& rule, double z,
                                 std::size_t min_events);

/// run_trials in checkpoint rounds with deterministic early stopping.
/// `trials` is the budget unless config overrides it via max_trials.
/// shard_options.shards > 1 forks each round across worker processes
/// (mc/sharded.h) — the result is bit-identical for every shard count
/// and thread count.  Requires adaptive.target_rel_ci > 0.
[[nodiscard]] AdaptiveResult run_trials_adaptive(
    std::size_t trials, const McConfig& config,
    const AdaptiveConfig& adaptive, const StopRule& rule,
    const ShardOptions& shard_options,
    const std::function<void(std::size_t, Rng&, McAccumulator&)>& trial);

/// run_trial_batches in checkpoint rounds; same contract.
[[nodiscard]] AdaptiveResult run_trial_batches_adaptive(
    std::size_t trials, const McConfig& config,
    const AdaptiveConfig& adaptive, const StopRule& rule,
    const ShardOptions& shard_options, std::size_t max_batch,
    const std::function<void(std::size_t, std::size_t, Rng*, McAccumulator&)>&
        batch);

}  // namespace comimo
