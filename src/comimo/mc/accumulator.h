// Mergeable per-shard accumulator for Monte-Carlo sweeps.
//
// Each shard of a sweep owns one McAccumulator; trials add named
// counters (error/trial counts) and named observations (Welford
// mean/variance with min/max).  Shards merge in fixed shard order, so
// the reduced state is a pure function of (seed, trials, chunk size) —
// never of the worker count that happened to execute the shards.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "comimo/numeric/stats.h"

namespace comimo {

class McAccumulator {
 public:
  /// Adds `n` to the named counter (creating it at zero).
  void count(const std::string& name, std::uint64_t n = 1);

  /// Adds one observation to the named streaming statistic.
  void observe(const std::string& name, double x);

  /// Counter value; 0 when the counter was never touched.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  /// Streaming statistic; an empty RunningStats when never observed.
  [[nodiscard]] const RunningStats& stat(const std::string& name) const;

  /// counter(numerator) / counter(denominator) with Wilson 95% interval;
  /// the BER/PER reporting shape.  Returns a zero estimate when the
  /// denominator is zero.
  [[nodiscard]] RateEstimate rate(const std::string& numerator,
                                  const std::string& denominator) const;

  /// Folds `other` into this accumulator.  Counters add; statistics
  /// merge via the pairwise Welford update.  The engine always merges in
  /// ascending shard order so results are reproducible bit-for-bit.
  void merge(const McAccumulator& other);

  [[nodiscard]] std::vector<std::string> counter_names() const;
  [[nodiscard]] std::vector<std::string> stat_names() const;

  /// Exact (bitwise on doubles) state equality, for the thread-count
  /// invariance tests.
  friend bool operator==(const McAccumulator&, const McAccumulator&) = default;

  /// Appends a bit-exact wire image of this accumulator to `out`
  /// (little-endian lengths/values, doubles as IEEE bit patterns) — the
  /// transport the multi-process sharding driver ships per-chunk
  /// accumulators over.  deserialize() advances `pos` past one image and
  /// round-trips exactly: deserialize(serialize(a)) == a bitwise.
  void serialize(std::vector<std::uint8_t>& out) const;
  [[nodiscard]] static McAccumulator deserialize(
      const std::vector<std::uint8_t>& in, std::size_t& pos);

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, RunningStats> stats_;
};

}  // namespace comimo
