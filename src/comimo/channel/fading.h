// Flat Rayleigh block fading.
//
// §2.3: "the MIMO systems are referring to the ones coded with space-time
// block codes (such as Alamouti code) and a flat Rayleigh fading channel".
// The channel matrix H has i.i.d. CN(0,1) entries, constant over one STBC
// block and independent across blocks (block fading).  ‖H‖²_F is then
// Gamma(mt·mr, 1) distributed — the statistic behind the ē_b solver.
#pragma once

#include <cstddef>

#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/rng.h"

namespace comimo {

class RayleighBlockFading {
 public:
  /// mt transmit branches × mr receive branches; `unit_power` entries
  /// are CN(0, 1).
  RayleighBlockFading(std::size_t mt, std::size_t mr, Rng rng);

  /// Draws the channel matrix H (mr × mt: rows are receive antennas) for
  /// the next block.
  [[nodiscard]] CMatrix next_block();

  /// Same draw written into a caller buffer of shape mr × mt (every
  /// entry overwritten; same RNG consumption as next_block()).
  void next_block_into(CMatrixView out);

  /// Scalar Rayleigh coefficient for SISO use.
  [[nodiscard]] cplx next_coefficient();

  [[nodiscard]] std::size_t mt() const noexcept { return mt_; }
  [[nodiscard]] std::size_t mr() const noexcept { return mr_; }

 private:
  std::size_t mt_;
  std::size_t mr_;
  Rng rng_;
};

/// First-order autoregressive (Jakes-approximation) fading track for the
/// testbed: h[k+1] = ρ h[k] + √(1-ρ²) w[k], keeping |h| Rayleigh while
/// introducing the temporal correlation of a slowly moving indoor channel.
class CorrelatedFadingTrack {
 public:
  /// `rho` in [0, 1): per-step correlation (1 ⇒ static channel).
  CorrelatedFadingTrack(double rho, Rng rng);

  [[nodiscard]] cplx next();

  [[nodiscard]] double rho() const noexcept { return rho_; }

 private:
  double rho_;
  double innovation_scale_;
  cplx state_;
  Rng rng_;
};

}  // namespace comimo
