#include "comimo/channel/pathloss.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

double PathLossModel::attenuation_db(double distance_m) const {
  return linear_to_db(attenuation(distance_m));
}

PowerLawPathLoss::PowerLawPathLoss(double g1, double kappa, double link_margin)
    : g1_(g1), kappa_(kappa), link_margin_(link_margin) {
  COMIMO_CHECK(g1 > 0.0 && kappa > 0.0 && link_margin > 0.0,
               "path-loss parameters must be positive");
}

PowerLawPathLoss::PowerLawPathLoss(const SystemParams& params)
    : PowerLawPathLoss(params.g1, params.kappa, params.link_margin) {}

double PowerLawPathLoss::attenuation(double distance_m) const {
  COMIMO_CHECK(distance_m >= 0.0, "negative distance");
  return g1_ * std::pow(distance_m, kappa_) * link_margin_;
}

FreeSpacePathLoss::FreeSpacePathLoss(const SystemParams& params)
    : params_(params) {}

double FreeSpacePathLoss::attenuation(double distance_m) const {
  COMIMO_CHECK(distance_m >= 0.0, "negative distance");
  return params_.long_haul_attenuation(distance_m);
}

ObstructedPathLoss::ObstructedPathLoss(
    std::shared_ptr<const PathLossModel> base, double obstacle_loss_db)
    : base_(std::move(base)),
      obstacle_loss_db_(obstacle_loss_db),
      obstacle_loss_linear_(db_to_linear(obstacle_loss_db)) {
  COMIMO_CHECK(base_ != nullptr, "null base path-loss model");
  COMIMO_CHECK(obstacle_loss_db >= 0.0, "obstacle loss must be >= 0 dB");
}

double ObstructedPathLoss::attenuation(double distance_m) const {
  return base_->attenuation(distance_m) * obstacle_loss_linear_;
}

}  // namespace comimo
