// Path-loss models.
//
// The paper uses two attenuation laws (§2.3):
//  * local/intra-cluster links: κ-th power law, G_d = G_1 d^κ M_l;
//  * long-haul cooperative links: square law, (4πD)²/(GtGr λ²) · M_l · N_f.
// Both are exposed behind a common interface so the testbed and network
// layers can treat attenuation uniformly; the energy module uses the raw
// SystemParams helpers directly for fidelity to the equations.
#pragma once

#include <memory>

#include "comimo/common/constants.h"

namespace comimo {

/// Linear power attenuation as a function of distance.  Values are
/// ≥ 1 (a gain of 1/attenuation is applied to the transmitted power).
class PathLossModel {
 public:
  virtual ~PathLossModel() = default;

  /// Power attenuation factor at `distance_m` meters (linear, ≥ 0).
  [[nodiscard]] virtual double attenuation(double distance_m) const = 0;

  /// Attenuation in dB.
  [[nodiscard]] double attenuation_db(double distance_m) const;
};

/// κ-power law with reference gain, matching the paper's local links.
class PowerLawPathLoss final : public PathLossModel {
 public:
  /// attenuation(d) = g1 · d^κ · link_margin (the paper's G_d).
  PowerLawPathLoss(double g1, double kappa, double link_margin);
  /// From the shared SystemParams.
  explicit PowerLawPathLoss(const SystemParams& params);

  [[nodiscard]] double attenuation(double distance_m) const override;

  [[nodiscard]] double kappa() const noexcept { return kappa_; }

 private:
  double g1_;
  double kappa_;
  double link_margin_;
};

/// Square-law free-space loss with antenna gains, link margin and noise
/// figure folded in, matching the paper's long-haul factor.
class FreeSpacePathLoss final : public PathLossModel {
 public:
  explicit FreeSpacePathLoss(const SystemParams& params);

  [[nodiscard]] double attenuation(double distance_m) const override;

 private:
  SystemParams params_;
};

/// Fixed extra attenuation stacked on a base model — the thick board /
/// concrete walls of the paper's indoor experiments.
class ObstructedPathLoss final : public PathLossModel {
 public:
  ObstructedPathLoss(std::shared_ptr<const PathLossModel> base,
                     double obstacle_loss_db);

  [[nodiscard]] double attenuation(double distance_m) const override;

  [[nodiscard]] double obstacle_loss_db() const noexcept {
    return obstacle_loss_db_;
  }

 private:
  std::shared_ptr<const PathLossModel> base_;
  double obstacle_loss_db_;
  double obstacle_loss_linear_;
};

}  // namespace comimo
