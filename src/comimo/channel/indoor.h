// Composite indoor link: path gain + obstacle loss + multipath fading.
//
// This is the channel the simulated USRP testbed (src/testbed) runs over.
// Each transmitter→receiver pair owns one IndoorLink; the receiver sums
// the propagated signals of all simultaneous transmitters and adds a
// single AWGN realization, mirroring how superposition works at a real
// antenna.  Noise is therefore *not* added here — see AwgnChannel.
#pragma once

#include <span>
#include <vector>

#include "comimo/channel/multipath.h"
#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/rng.h"

namespace comimo {

struct IndoorLinkConfig {
  /// Mean link gain in dB applied to the signal amplitude (typically
  /// negative; includes distance loss relative to the reference SNR
  /// budget of the experiment).
  double gain_db = 0.0;
  /// Additional obstruction loss in dB (thick board, concrete walls).
  double obstacle_loss_db = 0.0;
  /// Small-scale fading profile.
  MultipathProfile multipath{};
  /// Extra carrier phase rotation of this path [rad] — used by the
  /// beamforming experiments where two transmitters differ by an imposed
  /// phase delay plus geometric path difference.
  double phase_offset_rad = 0.0;
};

class IndoorLink {
 public:
  IndoorLink(const IndoorLinkConfig& config, Rng rng);

  /// Redraws the small-scale fading (call once per packet for block
  /// fading).
  void redraw_fading();

  /// Propagates samples through gain, obstruction, phase offset and
  /// multipath; no noise is added.
  [[nodiscard]] std::vector<cplx> propagate(std::span<const cplx> samples);

  /// Mean amplitude gain (linear) without the fading realization.
  [[nodiscard]] double mean_amplitude_gain() const noexcept {
    return amplitude_gain_;
  }
  [[nodiscard]] const IndoorLinkConfig& config() const noexcept {
    return config_;
  }
  /// Instantaneous fading power of the current realization.
  [[nodiscard]] double fading_power() const noexcept {
    return tdl_.channel_power();
  }

 private:
  IndoorLinkConfig config_;
  double amplitude_gain_;
  cplx phase_rotation_;
  TappedDelayLine tdl_;
};

/// Element-wise sum of equally long sample streams (superposition at the
/// receive antenna).
[[nodiscard]] std::vector<cplx> superpose(
    const std::vector<std::vector<cplx>>& streams);

}  // namespace comimo
