// Tapped-delay-line multipath channel.
//
// Models the indoor propagation of the paper's USRP experiments (§6.4):
// an exponentially decaying power-delay profile with independent Rayleigh
// taps, applied as a complex FIR filter over baseband samples.  Fig. 8's
// "the received signal amplitude in the null direction is not zero"
// observation is a direct consequence of this block.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/rng.h"

namespace comimo {

struct MultipathProfile {
  /// Number of taps (1 = flat channel).
  std::size_t num_taps = 1;
  /// Power decay per tap in dB (exponential PDP).
  double tap_decay_db = 3.0;
  /// Rician K-factor of the first tap (linear); 0 = pure Rayleigh,
  /// large K = near line-of-sight.
  double k_factor = 0.0;
  /// Total channel power normalized to 1 when true.
  bool normalize_power = true;
};

class TappedDelayLine {
 public:
  TappedDelayLine(const MultipathProfile& profile, Rng rng);

  /// Draws a new tap realization (block fading across packets).
  void redraw();

  /// Applies the FIR channel; the output has the same length as the input
  /// (initial state is zero, tail truncated).
  [[nodiscard]] std::vector<cplx> apply(std::span<const cplx> samples);

  [[nodiscard]] const std::vector<cplx>& taps() const noexcept {
    return taps_;
  }
  /// Instantaneous channel power Σ|h_i|².
  [[nodiscard]] double channel_power() const noexcept;

 private:
  MultipathProfile profile_;
  std::vector<double> tap_scales_;  // deterministic PDP amplitudes
  std::vector<cplx> taps_;
  Rng rng_;
};

}  // namespace comimo
