#include "comimo/channel/multipath.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

TappedDelayLine::TappedDelayLine(const MultipathProfile& profile, Rng rng)
    : profile_(profile), rng_(rng) {
  COMIMO_CHECK(profile.num_taps >= 1, "need at least one tap");
  COMIMO_CHECK(profile.tap_decay_db >= 0.0, "tap decay must be >= 0 dB");
  COMIMO_CHECK(profile.k_factor >= 0.0, "K-factor must be >= 0");
  tap_scales_.resize(profile.num_taps);
  double total = 0.0;
  for (std::size_t i = 0; i < profile.num_taps; ++i) {
    const double p =
        db_to_linear(-profile.tap_decay_db * static_cast<double>(i));
    tap_scales_[i] = p;
    total += p;
  }
  if (profile.normalize_power && total > 0.0) {
    for (auto& p : tap_scales_) p /= total;
  }
  redraw();
}

void TappedDelayLine::redraw() {
  taps_.assign(profile_.num_taps, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < profile_.num_taps; ++i) {
    const double power = tap_scales_[i];
    if (i == 0 && profile_.k_factor > 0.0) {
      // Rician first tap: fixed LOS component plus scattered part.
      const double k = profile_.k_factor;
      const double los = std::sqrt(power * k / (k + 1.0));
      const cplx nlos = rng_.complex_gaussian(power / (k + 1.0));
      taps_[i] = cplx{los, 0.0} + nlos;
    } else {
      taps_[i] = rng_.complex_gaussian(power);
    }
  }
}

std::vector<cplx> TappedDelayLine::apply(std::span<const cplx> samples) {
  std::vector<cplx> out(samples.size(), cplx{0.0, 0.0});
  for (std::size_t n = 0; n < samples.size(); ++n) {
    cplx acc{0.0, 0.0};
    const std::size_t kmax = std::min(taps_.size() - 1, n);
    for (std::size_t k = 0; k <= kmax; ++k) {
      acc += taps_[k] * samples[n - k];
    }
    out[n] = acc;
  }
  return out;
}

double TappedDelayLine::channel_power() const noexcept {
  double p = 0.0;
  for (const auto& h : taps_) p += std::norm(h);
  return p;
}

}  // namespace comimo
