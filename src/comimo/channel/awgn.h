// Additive white Gaussian noise.
#pragma once

#include <span>
#include <vector>

#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/rng.h"

namespace comimo {

/// Complex AWGN source with per-sample variance N0 (so each of I/Q gets
/// N0/2).  SNR bookkeeping is the caller's job; helpers below convert
/// Eb/N0 to a noise variance for unit-energy symbols.
class AwgnChannel {
 public:
  AwgnChannel(double noise_variance, Rng rng);

  /// Adds noise in place.
  void apply(std::span<cplx> samples);
  /// Returns a noisy copy.
  [[nodiscard]] std::vector<cplx> add(std::span<const cplx> samples);
  /// One noise sample.
  [[nodiscard]] cplx sample();

  [[nodiscard]] double noise_variance() const noexcept {
    return noise_variance_;
  }

 private:
  double noise_variance_;
  Rng rng_;
};

/// Noise variance for a target Eb/N0 (dB) given symbol energy Es and
/// bits/symbol b (unit-energy symbols: es = 1).
[[nodiscard]] double noise_variance_for_ebn0_db(double ebn0_db,
                                                double es = 1.0,
                                                double bits_per_symbol = 1.0);

}  // namespace comimo
