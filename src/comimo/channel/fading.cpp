#include "comimo/channel/fading.h"

#include <cmath>

#include "comimo/common/error.h"

namespace comimo {

RayleighBlockFading::RayleighBlockFading(std::size_t mt, std::size_t mr,
                                         Rng rng)
    : mt_(mt), mr_(mr), rng_(rng) {
  COMIMO_CHECK(mt >= 1 && mr >= 1, "fading needs at least 1x1");
}

CMatrix RayleighBlockFading::next_block() {
  CMatrix h(mr_, mt_);
  next_block_into(h);
  return h;
}

void RayleighBlockFading::next_block_into(CMatrixView out) {
  COMIMO_DCHECK(out.rows() == mr_ && out.cols() == mt_,
                "next_block_into buffer must be mr × mt");
  random_gaussian_into(out, rng_, 1.0);
}

cplx RayleighBlockFading::next_coefficient() {
  return rng_.complex_gaussian(1.0);
}

CorrelatedFadingTrack::CorrelatedFadingTrack(double rho, Rng rng)
    : rho_(rho),
      innovation_scale_(std::sqrt(1.0 - rho * rho)),
      state_(0.0, 0.0),
      rng_(rng) {
  COMIMO_CHECK(rho >= 0.0 && rho < 1.0, "rho must be in [0,1)");
  // Start from the stationary distribution so the first samples are
  // already Rayleigh.
  state_ = rng_.complex_gaussian(1.0);
}

cplx CorrelatedFadingTrack::next() {
  state_ = state_ * rho_ + rng_.complex_gaussian(1.0) * innovation_scale_;
  return state_;
}

}  // namespace comimo
