#include "comimo/channel/awgn.h"

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

AwgnChannel::AwgnChannel(double noise_variance, Rng rng)
    : noise_variance_(noise_variance), rng_(rng) {
  COMIMO_CHECK(noise_variance >= 0.0, "negative noise variance");
}

void AwgnChannel::apply(std::span<cplx> samples) {
  if (noise_variance_ == 0.0) return;
  for (auto& s : samples) s += rng_.complex_gaussian(noise_variance_);
}

std::vector<cplx> AwgnChannel::add(std::span<const cplx> samples) {
  std::vector<cplx> out(samples.begin(), samples.end());
  apply(out);
  return out;
}

cplx AwgnChannel::sample() { return rng_.complex_gaussian(noise_variance_); }

double noise_variance_for_ebn0_db(double ebn0_db, double es,
                                  double bits_per_symbol) {
  COMIMO_CHECK(es > 0.0 && bits_per_symbol > 0.0,
               "energy and rate must be positive");
  const double ebn0 = db_to_linear(ebn0_db);
  const double eb = es / bits_per_symbol;
  return eb / ebn0;  // N0
}

}  // namespace comimo
