#include "comimo/channel/indoor.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

IndoorLink::IndoorLink(const IndoorLinkConfig& config, Rng rng)
    : config_(config),
      amplitude_gain_(std::pow(
          10.0, (config.gain_db - config.obstacle_loss_db) / 20.0)),
      phase_rotation_(std::cos(config.phase_offset_rad),
                      std::sin(config.phase_offset_rad)),
      tdl_(config.multipath, rng) {}

void IndoorLink::redraw_fading() { tdl_.redraw(); }

std::vector<cplx> IndoorLink::propagate(std::span<const cplx> samples) {
  std::vector<cplx> out = tdl_.apply(samples);
  const cplx scale = phase_rotation_ * amplitude_gain_;
  for (auto& s : out) s *= scale;
  return out;
}

std::vector<cplx> superpose(const std::vector<std::vector<cplx>>& streams) {
  COMIMO_CHECK(!streams.empty(), "superpose needs at least one stream");
  const std::size_t n = streams.front().size();
  for (const auto& s : streams) {
    COMIMO_CHECK(s.size() == n, "superpose needs equal-length streams");
  }
  std::vector<cplx> out(n, cplx{0.0, 0.0});
  for (const auto& s : streams) {
    for (std::size_t i = 0; i < n; ++i) out[i] += s[i];
  }
  return out;
}

}  // namespace comimo
