// Slotted CSMA/CA (DCF-style) discrete-event MAC simulator.
//
// §2.1: "Carrier Sense Multiple Access with Collision Avoidance (CSMA/CA)
// is used to avoid the communication collisions at the link layer."  The
// simulator models one collision domain (all heads hear each other —
// adequate at backbone scale): stations with a pending frame count down
// a uniform backoff in idle slots, transmit at zero, collide when more
// than one station fires in the same slot, and double their contention
// window up to cw_max (binary exponential backoff) until max_retries.
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/net/node.h"

namespace comimo {

struct CsmaCaConfig {
  double slot_time_s = 20e-6;
  double difs_slots = 2;        ///< idle slots required before contention
  unsigned cw_min = 16;         ///< initial contention window (slots)
  unsigned cw_max = 1024;
  unsigned max_retries = 7;
  double bitrate_bps = 250e3;   ///< on-air rate for frame duration
  std::uint64_t seed = 1;
};

struct CsmaStation {
  NodeId id = 0;
  double arrival_rate_fps = 10.0;  ///< Poisson frame arrivals per second
  std::size_t frame_bits = 12000;  ///< 1500-byte frames by default
};

struct CsmaCaStats {
  std::uint64_t offered_frames = 0;
  std::uint64_t delivered_frames = 0;
  std::uint64_t collisions = 0;      ///< slots with >1 transmitter
  std::uint64_t dropped_frames = 0;  ///< retry limit exceeded
  double mean_access_delay_s = 0.0;  ///< arrival → successful delivery
  double throughput_bps = 0.0;
  double channel_busy_fraction = 0.0;

  [[nodiscard]] double delivery_ratio() const noexcept {
    return offered_frames
               ? static_cast<double>(delivered_frames) / offered_frames
               : 0.0;
  }
};

class CsmaCaSimulator {
 public:
  CsmaCaSimulator(CsmaCaConfig config, std::vector<CsmaStation> stations);

  /// Runs for `duration_s` of simulated time and returns the aggregate
  /// statistics.  Deterministic in the config seed.
  [[nodiscard]] CsmaCaStats run(double duration_s);

 private:
  CsmaCaConfig config_;
  std::vector<CsmaStation> stations_;
};

}  // namespace comimo
