// Secondary-user node of the CoMIMONet (§2.1).
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/common/geometry.h"

namespace comimo {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~NodeId{0};

struct SuNode {
  NodeId id = kInvalidNode;
  Vec2 position;
  /// Remaining battery energy [J]; head election prefers the
  /// highest-battery node.
  double battery_j = 1.0;
};

/// Cluster of SU nodes — a cooperative MIMO node (§2.1's terminology).
struct Cluster {
  std::uint32_t id = 0;
  std::vector<NodeId> members;
  NodeId head = kInvalidNode;

  [[nodiscard]] std::size_t size() const noexcept { return members.size(); }
};

}  // namespace comimo
