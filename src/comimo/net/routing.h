// Multi-hop cooperative routing over the backbone (§2.2 + §4).
//
// A route is the backbone path between the source's and destination's
// clusters; every hop is a cooperative transmission planned by
// Algorithm 2, with the per-node energy ledger drawn from the §2.3
// model.  Battery accounting optionally depletes node energy, which a
// later head re-election would react to (the paper's "clusters and the
// routing backbone are reconfigurable").
#pragma once

#include <vector>

#include "comimo/net/spanning_tree.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {

struct RouteHop {
  ClusterId from = 0;
  ClusterId to = 0;
  CoopLink::Kind kind = CoopLink::Kind::kSiso;
  UnderlayHopPlan plan;
};

struct RouteReport {
  std::vector<RouteHop> hops;
  double total_energy_per_bit = 0.0;  ///< Σ hop total (PA + circuits)
  double peak_pa_per_bit = 0.0;       ///< max over hops of E_PA
  [[nodiscard]] std::size_t num_hops() const noexcept { return hops.size(); }
};

/// How hops are executed along the route.
enum class RoutingMode {
  kCooperative,    ///< full-cluster virtual MIMO (the paper's scheme)
  kSisoHeadsOnly,  ///< only the heads talk — the non-cooperative
                   ///< baseline the lifetime bench compares against
};

class CooperativeRouter {
 public:
  CooperativeRouter(const CoMimoNet& net, const SystemParams& params,
                    double ber, double bandwidth_hz,
                    RoutingMode mode = RoutingMode::kCooperative);

  /// Plans the route between the clusters of two nodes.  Throws
  /// InfeasibleError when the backbone does not connect them.
  [[nodiscard]] RouteReport route(NodeId source, NodeId destination) const;

  /// Deducts each hop's per-node energies from the batteries of the
  /// participating nodes for `bits` transported bits.
  void apply_battery_drain(CoMimoNet& net, const RouteReport& report,
                           double bits) const;

  /// Per-hop drain — the unit apply_battery_drain loops over, exposed so
  /// the resilience layer can charge each ARQ retransmission attempt
  /// (possibly with a degraded plan) through the same ledger.  When
  /// `touched` is non-null the ids of every drained node are appended
  /// (duplicates possible), letting callers track battery minima
  /// incrementally instead of rescanning the whole network.
  void apply_hop_drain(CoMimoNet& net, const RouteHop& hop, double bits,
                       std::vector<NodeId>* touched = nullptr) const;

  [[nodiscard]] const RoutingBackbone& backbone() const noexcept {
    return backbone_;
  }

 private:
  const CoMimoNet& net_;
  RoutingBackbone backbone_;
  UnderlayCooperativeHop hop_planner_;
  double ber_;
  double bandwidth_hz_;
  RoutingMode mode_;
};

/// The cluster members a plan with `m` cooperators actually uses: the
/// head plus the first (m − 1) other members, head first.  This is the
/// participant rule both battery drain and the hop scheduler follow.
[[nodiscard]] std::vector<NodeId> hop_participants(const Cluster& cluster,
                                                   unsigned m);

}  // namespace comimo
