// Network-lifetime simulation.
//
// The energy case for cooperative MIMO (refs [9],[10]) is ultimately a
// lifetime case: how long until batteries die under traffic?  This
// module runs repeated random-pair traffic rounds over a CoMIMONet,
// draining batteries through the router's ledger and re-electing heads
// after every round (§2.1's reconfiguration), and reports when the
// first node dies and when a configurable fraction of the network is
// gone.  The ext_network_lifetime bench compares cooperative vs
// heads-only routing with it.
#pragma once

#include <cstdint>

#include "comimo/mc/engine.h"
#include "comimo/net/routing.h"
#include "comimo/numeric/stats.h"
#include "comimo/resilience/resilient_sim.h"

namespace comimo {

struct LifetimeConfig {
  RoutingMode mode = RoutingMode::kCooperative;
  double bits_per_round = 1e5;
  double ber = 1e-3;
  double bandwidth_hz = 40e3;
  /// Stop when this fraction of nodes is dead (battery ≤ 0).
  double death_fraction = 0.25;
  std::size_t round_cap = 5000;
  std::uint64_t traffic_seed = 1;
  /// Fault injection (off by default: with `faults.enabled == false`
  /// the run is bit-identical to the original happy path).  When
  /// enabled, scheduled deaths shrink the network mid-run (dead nodes
  /// are cut out and clusters/backbone rebuilt) and per-slot erasures
  /// charge ARQ retransmission energy through the same ledger.
  FaultConfig faults{};
  ArqConfig arq{};
};

struct LifetimeReport {
  std::size_t rounds_to_first_death = 0;   ///< 0 = none within the cap
  std::size_t rounds_to_death_fraction = 0;  ///< capped at round_cap
  bool censored = false;  ///< true when the cap ended the run
  double min_battery_j = 0.0;
  std::size_t dead_nodes = 0;
  /// What the recovery machinery did (all-zero when faults are off).
  ResilienceReport resilience{};
};

/// Runs the traffic loop on a copy of `net` (the input is untouched).
[[nodiscard]] LifetimeReport simulate_lifetime(const CoMimoNet& net,
                                               const SystemParams& params,
                                               const LifetimeConfig& config);

/// Replicated lifetime trials on the mc/ engine.  The rounds within one
/// trial are inherently sequential (battery state carries over), so the
/// ensemble parallelizes across *trials*: trial t derives its traffic
/// and fault seeds from Rng(seed, t), making the whole ensemble a pure
/// function of (net, params, base, seed) — bit-identical on any pool.
struct LifetimeEnsembleConfig {
  LifetimeConfig base{};        ///< traffic_seed / faults.seed overridden
  std::size_t trials = 16;
  std::uint64_t seed = 1;       ///< ensemble seed (per-trial seeds derived)
  std::size_t chunk_size = 0;   ///< engine shard size; 0 = auto
  ThreadPool* pool = nullptr;   ///< null = shared pool
};

struct LifetimeEnsembleReport {
  RunningStats rounds_to_first_death;
  RunningStats rounds_to_death_fraction;
  RunningStats min_battery_j;
  RunningStats dead_nodes;
  std::size_t censored_trials = 0;  ///< trials the round cap ended
  std::size_t trials = 0;
  McRunInfo info;
};

[[nodiscard]] LifetimeEnsembleReport simulate_lifetime_ensemble(
    const CoMimoNet& net, const SystemParams& params,
    const LifetimeEnsembleConfig& config);

}  // namespace comimo
