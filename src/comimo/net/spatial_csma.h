// Spatial CSMA/CA: carrier sensing with positions.
//
// The single-collision-domain simulator (csma_ca.h) is adequate for one
// backbone neighborhood; at field scale the MAC behaves differently —
// distant clusters reuse the channel concurrently, and *hidden
// terminals* (two transmitters that cannot hear each other but share a
// receiver) collide despite carrier sensing.  This simulator adds both:
// stations sense only transmitters within `carrier_sense_range_m`, and
// a frame is lost if any other station transmits within
// `interference_range_m` of its destination during its airtime.
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/common/geometry.h"
#include "comimo/net/index_mode.h"
#include "comimo/net/node.h"

namespace comimo {

struct SpatialCsmaConfig {
  double slot_time_s = 20e-6;
  unsigned difs_slots = 2;
  unsigned cw_min = 16;
  unsigned cw_max = 1024;
  unsigned max_retries = 7;
  double bitrate_bps = 250e3;
  double carrier_sense_range_m = 100.0;
  double interference_range_m = 80.0;
  std::uint64_t seed = 1;
  /// kGrid turns the per-slot carrier-sense and interference scans into
  /// spatial-grid existence queries (O(1) per station instead of O(n));
  /// both are pure "any transmitter within range" booleans over the
  /// same exact distance predicate, so the stats are bit-identical.
  NetIndexMode index_mode = net_index_mode();
};

struct SpatialStation {
  NodeId id = 0;
  Vec2 position;
  Vec2 destination;                ///< where its frames are received
  double arrival_rate_fps = 10.0;
  std::size_t frame_bits = 12000;
};

struct SpatialCsmaStats {
  std::uint64_t offered_frames = 0;
  std::uint64_t delivered_frames = 0;
  std::uint64_t lost_frames = 0;     ///< corrupted at the receiver
  std::uint64_t dropped_frames = 0;  ///< retry limit exceeded
  double throughput_bps = 0.0;
  /// Mean number of stations transmitting simultaneously in busy slots
  /// — the spatial-reuse figure (1.0 = no reuse).
  double mean_concurrency = 0.0;

  [[nodiscard]] double delivery_ratio() const noexcept {
    return offered_frames
               ? static_cast<double>(delivered_frames) / offered_frames
               : 0.0;
  }
  [[nodiscard]] double loss_ratio() const noexcept {
    return offered_frames
               ? static_cast<double>(lost_frames) / offered_frames
               : 0.0;
  }
};

class SpatialCsmaSimulator {
 public:
  SpatialCsmaSimulator(SpatialCsmaConfig config,
                       std::vector<SpatialStation> stations);

  [[nodiscard]] SpatialCsmaStats run(double duration_s);

 private:
  SpatialCsmaConfig config_;
  std::vector<SpatialStation> stations_;
};

}  // namespace comimo
