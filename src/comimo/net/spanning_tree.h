// Routing backbone (§2.1): "All head nodes form a spanning tree which is
// used as a routing backbone and its paths are used for data relay."
//
// The tree is a minimum spanning tree of G_MIMO under link length
// (shorter hops cost less PA energy), built with Kruskal + union-find.
#pragma once

#include <optional>
#include <vector>

#include "comimo/net/comimonet.h"

namespace comimo {

/// Disjoint-set forest with union by rank and path compression.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  [[nodiscard]] std::size_t find(std::size_t x);
  /// Returns false when x and y were already connected.
  bool unite(std::size_t x, std::size_t y);
  [[nodiscard]] std::size_t num_components() const noexcept {
    return components_;
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t components_;
};

class RoutingBackbone {
 public:
  /// Builds the MST forest of the network's cluster graph (a spanning
  /// tree per connected component).
  explicit RoutingBackbone(const CoMimoNet& net);

  /// Tree edges (subset of the network's links).
  [[nodiscard]] const std::vector<CoopLink>& tree_edges() const noexcept {
    return edges_;
  }

  /// Unique tree path between two clusters (inclusive of endpoints);
  /// nullopt when they are in different components.
  [[nodiscard]] std::optional<std::vector<ClusterId>> path(
      ClusterId from, ClusterId to) const;

  [[nodiscard]] bool connected(ClusterId a, ClusterId b) const;
  [[nodiscard]] std::size_t num_components() const noexcept {
    return num_components_;
  }
  /// Total length of the backbone's edges.
  [[nodiscard]] double total_length() const noexcept;

 private:
  std::size_t num_clusters_;
  std::vector<CoopLink> edges_;
  std::vector<std::vector<ClusterId>> adjacency_;
  std::vector<std::size_t> component_;
  std::size_t num_components_ = 0;
};

}  // namespace comimo
