#include "comimo/net/lifetime.h"

#include <algorithm>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {

LifetimeReport simulate_lifetime(const CoMimoNet& net,
                                 const SystemParams& params,
                                 const LifetimeConfig& config) {
  COMIMO_CHECK(config.bits_per_round > 0.0, "bits per round must be > 0");
  COMIMO_CHECK(config.death_fraction > 0.0 && config.death_fraction <= 1.0,
               "death fraction in (0, 1]");
  COMIMO_CHECK(config.round_cap >= 1, "round cap must be >= 1");

  CoMimoNet world = net;  // drained copy; the caller's net is untouched
  const std::size_t total = world.nodes().size();
  Rng traffic(config.traffic_seed, 0x7AFF1C);

  LifetimeReport report;
  for (std::size_t round = 1; round <= config.round_cap; ++round) {
    // The router re-plans against current heads each round.
    const CooperativeRouter router(world, params, config.ber,
                                   config.bandwidth_hz, config.mode);
    const NodeId src = static_cast<NodeId>(traffic.uniform_int(total));
    const NodeId dst = static_cast<NodeId>(traffic.uniform_int(total));
    if (router.backbone().connected(world.cluster_of(src),
                                    world.cluster_of(dst))) {
      const RouteReport route = router.route(src, dst);
      router.apply_battery_drain(world, route, config.bits_per_round);
      world.reelect_heads();
    }

    std::size_t dead = 0;
    double min_battery = std::numeric_limits<double>::infinity();
    for (const auto& n : world.nodes()) {
      if (n.battery_j <= 0.0) ++dead;
      min_battery = std::min(min_battery, n.battery_j);
    }
    report.dead_nodes = dead;
    report.min_battery_j = min_battery;
    if (dead >= 1 && report.rounds_to_first_death == 0) {
      report.rounds_to_first_death = round;
    }
    if (static_cast<double>(dead) >=
        config.death_fraction * static_cast<double>(total)) {
      report.rounds_to_death_fraction = round;
      return report;
    }
  }
  report.rounds_to_death_fraction = config.round_cap;
  report.censored = true;
  return report;
}

}  // namespace comimo
