#include "comimo/net/lifetime.h"

#include <algorithm>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/resilience/recovery.h"

namespace comimo {

namespace {

// Incremental battery bookkeeping shared by both lifetime paths.
// Traffic only ever *lowers* batteries, so the network-wide minimum and
// the dead count stay exact as long as every drained node is folded in
// (apply_hop_drain reports them); the per-round O(n) rescans the
// original code did are gone.
struct BatteryTracker {
  std::vector<std::uint8_t> battery_dead;  // by node id
  std::size_t dead_in_world = 0;
  double min_battery_j = std::numeric_limits<double>::infinity();

  void reset_from(const CoMimoNet& world, NodeId max_id) {
    battery_dead.assign(static_cast<std::size_t>(max_id) + 1, 0);
    recount(world);
  }

  /// Full rescan of the survivors — needed on rounds with scheduled
  /// deaths, which zero batteries (possibly *raising* a negative one)
  /// and shrink the node set.  Also refreshes the dead flags so a later
  /// incremental fold() cannot double-count a node.
  void recount(const CoMimoNet& world) {
    dead_in_world = 0;
    min_battery_j = std::numeric_limits<double>::infinity();
    for (const auto& n : world.nodes()) {
      if (n.battery_j <= 0.0) {
        ++dead_in_world;
        battery_dead[n.id] = 1;
      }
      min_battery_j = std::min(min_battery_j, n.battery_j);
    }
  }

  void fold(const CoMimoNet& world, const std::vector<NodeId>& touched) {
    for (const NodeId id : touched) {
      const double battery = world.node(id).battery_j;
      min_battery_j = std::min(min_battery_j, battery);
      if (battery <= 0.0 && battery_dead[id] == 0) {
        battery_dead[id] = 1;
        ++dead_in_world;
      }
    }
  }
};

// The fault-injected variant: scheduled deaths cut nodes out of the
// network (incremental re-clustering in kGrid mode, bit-identical to
// the full rebuild the original code did) and slot erasures charge ARQ
// retransmissions through the battery ledger.  Kept separate so the
// happy path below stays bit-identical to the original.
LifetimeReport simulate_lifetime_faulted(const CoMimoNet& net,
                                         const SystemParams& params,
                                         const LifetimeConfig& config) {
  validate(config.faults);
  validate(config.arq);

  CoMimoNet world = net;
  const std::size_t total = world.nodes().size();
  NodeId max_id = 0;
  for (const auto& n : net.nodes()) max_id = std::max(max_id, n.id);
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(max_id) + 1, 0);
  for (const auto& n : net.nodes()) alive[n.id] = 1;
  std::size_t alive_count = total;

  const FaultInjector injector(config.faults);
  const FaultPlan plan = injector.make_plan(net, config.round_cap);
  Rng traffic(config.traffic_seed, 0x7AFF1C);
  Rng arq_rng(config.faults.seed, 0xA49);
  const double bits = config.bits_per_round;

  LifetimeReport report;
  ResilienceReport& res = report.resilience;
  std::size_t next_death = 0;
  bool topology_dirty = false;

  BatteryTracker tracker;
  tracker.reset_from(world, max_id);
  std::vector<NodeId> pending_removals;
  std::vector<NodeId> touched;

  const auto finalize = [&res]() {
    res.delivery_ratio =
        res.packets_offered
            ? static_cast<double>(res.packets_delivered) /
                  static_cast<double>(res.packets_offered)
            : 0.0;
  };

  for (std::size_t round = 1; round <= config.round_cap; ++round) {
    bool deaths_this_round = false;
    while (next_death < plan.deaths().size() &&
           plan.deaths()[next_death].round <= round) {
      const NodeDeath& d = plan.deaths()[next_death++];
      if (d.node < alive.size() && alive[d.node]) {
        world.mutable_node(d.node).battery_j = 0.0;  // the ledger empties
        alive[d.node] = 0;
        --alive_count;
        ++res.node_deaths;
        if (world.clusters()[world.cluster_of(d.node)].head == d.node) {
          ++res.head_failovers;
        }
        pending_removals.push_back(d.node);
        topology_dirty = true;
        deaths_this_round = true;
      }
    }
    if (topology_dirty && alive_count > 0) {
      world.remove_nodes(pending_removals);
      pending_removals.clear();
      ++res.route_repairs;
      res.repair_time_s += config.faults.repair_time_s;
      topology_dirty = false;
    }

    touched.clear();
    if (alive_count > 0) {
      const CooperativeRouter router(world, params, config.ber,
                                     config.bandwidth_hz, config.mode);
      const NodeId src = static_cast<NodeId>(traffic.uniform_int(total));
      const NodeId dst = static_cast<NodeId>(traffic.uniform_int(total));
      if (src < alive.size() && dst < alive.size() && alive[src] &&
          alive[dst] &&
          router.backbone().connected(world.cluster_of(src),
                                      world.cluster_of(dst))) {
        const RouteReport route = router.route(src, dst);
        ++res.packets_offered;
        bool delivered = true;
        for (std::size_t h = 0; h < route.hops.size(); ++h) {
          bool hop_ok = false;
          for (unsigned k = 0; k < config.arq.max_attempts; ++k) {
            router.apply_hop_drain(world, route.hops[h], bits, &touched);
            res.energy_spent_j += route.hops[h].plan.total_energy() * bits;
            if (k > 0) {
              ++res.retransmissions;
              res.retransmit_energy_j +=
                  route.hops[h].plan.total_energy() * bits;
            }
            if (!plan.slot_erased(round, h, k)) {
              hop_ok = true;
              break;
            }
            double penalty = config.arq.ack_timeout_s;
            if (k + 1 < config.arq.max_attempts) {
              penalty += arq_backoff_s(config.arq, k, arq_rng);
            }
            res.backoff_wait_s += penalty;
          }
          if (!hop_ok) {
            ++res.arq_failures;
            delivered = false;
            break;
          }
        }
        if (delivered) {
          ++res.packets_delivered;
          res.delivered_bits += bits;
        }
        world.reelect_heads();
      }
    }

    if (deaths_this_round) {
      tracker.recount(world);
    } else {
      tracker.fold(world, touched);
    }
    const std::size_t dead =
        (total - world.nodes().size()) + tracker.dead_in_world;
    report.dead_nodes = dead;
    report.min_battery_j = tracker.min_battery_j;
    if (dead >= 1 && report.rounds_to_first_death == 0) {
      report.rounds_to_first_death = round;
    }
    if (static_cast<double>(dead) >=
        config.death_fraction * static_cast<double>(total)) {
      report.rounds_to_death_fraction = round;
      finalize();
      return report;
    }
  }
  report.rounds_to_death_fraction = config.round_cap;
  report.censored = true;
  finalize();
  return report;
}

}  // namespace

LifetimeReport simulate_lifetime(const CoMimoNet& net,
                                 const SystemParams& params,
                                 const LifetimeConfig& config) {
  COMIMO_CHECK(config.bits_per_round > 0.0, "bits per round must be > 0");
  COMIMO_CHECK(config.death_fraction > 0.0 && config.death_fraction <= 1.0,
               "death fraction in (0, 1]");
  COMIMO_CHECK(config.round_cap >= 1, "round cap must be >= 1");

  if (config.faults.enabled) {
    return simulate_lifetime_faulted(net, params, config);
  }

  CoMimoNet world = net;  // drained copy; the caller's net is untouched
  const std::size_t total = world.nodes().size();
  Rng traffic(config.traffic_seed, 0x7AFF1C);

  NodeId max_id = 0;
  for (const auto& n : world.nodes()) max_id = std::max(max_id, n.id);
  BatteryTracker tracker;
  tracker.reset_from(world, max_id);
  std::vector<NodeId> touched;

  LifetimeReport report;
  for (std::size_t round = 1; round <= config.round_cap; ++round) {
    // The router re-plans against current heads each round.
    const CooperativeRouter router(world, params, config.ber,
                                   config.bandwidth_hz, config.mode);
    const NodeId src = static_cast<NodeId>(traffic.uniform_int(total));
    const NodeId dst = static_cast<NodeId>(traffic.uniform_int(total));
    touched.clear();
    if (router.backbone().connected(world.cluster_of(src),
                                    world.cluster_of(dst))) {
      const RouteReport route = router.route(src, dst);
      // Same per-hop drain order as apply_battery_drain, with the
      // drained ids captured for the incremental tracker.
      for (const auto& hop : route.hops) {
        router.apply_hop_drain(world, hop, config.bits_per_round, &touched);
      }
      world.reelect_heads();
    }

    tracker.fold(world, touched);
    report.dead_nodes = tracker.dead_in_world;
    report.min_battery_j = tracker.min_battery_j;
    const std::size_t dead = tracker.dead_in_world;
    if (dead >= 1 && report.rounds_to_first_death == 0) {
      report.rounds_to_first_death = round;
    }
    if (static_cast<double>(dead) >=
        config.death_fraction * static_cast<double>(total)) {
      report.rounds_to_death_fraction = round;
      return report;
    }
  }
  report.rounds_to_death_fraction = config.round_cap;
  report.censored = true;
  return report;
}

LifetimeEnsembleReport simulate_lifetime_ensemble(
    const CoMimoNet& net, const SystemParams& params,
    const LifetimeEnsembleConfig& config) {
  COMIMO_CHECK(config.trials >= 1, "need at least one trial");
  McConfig mc;
  mc.seed = config.seed;
  mc.chunk_size = config.chunk_size;
  mc.pool = config.pool;
  const McResult run = run_trials(
      config.trials, mc, [&](std::size_t, Rng& rng, McAccumulator& acc) {
        LifetimeConfig trial_cfg = config.base;
        trial_cfg.traffic_seed = rng.next();
        trial_cfg.faults.seed = rng.next();
        const LifetimeReport r = simulate_lifetime(net, params, trial_cfg);
        acc.observe("rounds_to_first_death",
                    static_cast<double>(r.rounds_to_first_death));
        acc.observe("rounds_to_death_fraction",
                    static_cast<double>(r.rounds_to_death_fraction));
        acc.observe("min_battery_j", r.min_battery_j);
        acc.observe("dead_nodes", static_cast<double>(r.dead_nodes));
        if (r.censored) acc.count("censored");
      });
  LifetimeEnsembleReport report;
  report.rounds_to_first_death = run.acc.stat("rounds_to_first_death");
  report.rounds_to_death_fraction = run.acc.stat("rounds_to_death_fraction");
  report.min_battery_j = run.acc.stat("min_battery_j");
  report.dead_nodes = run.acc.stat("dead_nodes");
  report.censored_trials =
      static_cast<std::size_t>(run.acc.counter("censored"));
  report.trials = config.trials;
  report.info = run.info;
  return report;
}

}  // namespace comimo
