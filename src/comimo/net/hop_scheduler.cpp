#include "comimo/net/hop_scheduler.h"

#include <algorithm>

#include "comimo/common/error.h"

namespace comimo {

bool HopSchedule::is_sequential() const {
  for (std::size_t i = 0; i < slots.size(); ++i) {
    for (std::size_t j = i + 1; j < slots.size(); ++j) {
      const auto& a = slots[i];
      const auto& b = slots[j];
      const double a_end = a.start_s + a.duration_s;
      const double b_end = b.start_s + b.duration_s;
      const bool overlap = a.start_s < b_end && b.start_s < a_end;
      if (overlap) return false;
    }
  }
  return true;
}

HopSchedule HopScheduler::schedule(const UnderlayHopPlan& plan,
                                   const std::vector<NodeId>& tx_members,
                                   const std::vector<NodeId>& rx_members,
                                   double bits) const {
  COMIMO_CHECK(tx_members.size() == plan.config.mt,
               "transmit member count must match the plan's mt");
  COMIMO_CHECK(rx_members.size() == plan.config.mr,
               "receive member count must match the plan's mr");
  COMIMO_CHECK(bits > 0.0, "bit count must be positive");

  const double symbol_rate = plan.config.bandwidth_hz;  // B symbols/s
  const double bit_rate = static_cast<double>(plan.b) * symbol_rate;
  const double base_slot = bits / bit_rate;

  HopSchedule sched;
  double t = 0.0;

  // Step 1: local broadcast from the head.
  if (plan.config.mt > 1) {
    ScheduledTransmission s;
    s.step = ScheduledTransmission::Step::kIntraSource;
    s.start_s = t;
    s.duration_s = base_slot;
    s.transmitters = {tx_members.front()};
    s.receivers.assign(tx_members.begin() + 1, tx_members.end());
    s.tx_energy_j = (plan.local_tx_pa + plan.local_tx_circuit) * bits;
    t += s.duration_s;
    sched.slots.push_back(std::move(s));
  }

  // Step 2: long-haul STBC block; duration grows by 1/rate (the
  // orthogonal designs for 3–4 antennas send K symbols over T > K slots).
  {
    const StbcCode code = StbcCode::for_antennas(plan.config.mt);
    ScheduledTransmission s;
    s.step = ScheduledTransmission::Step::kLongHaul;
    s.start_s = t;
    s.duration_s = base_slot / code.rate();
    s.transmitters = tx_members;
    s.receivers = rx_members;
    s.tx_energy_j = (plan.mimo_tx_pa + plan.mimo_tx_circuit) * bits;
    t += s.duration_s;
    sched.slots.push_back(std::move(s));
  }

  // Step 3: each non-head receiver forwards to the head in turn.
  if (plan.config.mr > 1) {
    for (std::size_t i = 1; i < rx_members.size(); ++i) {
      ScheduledTransmission s;
      s.step = ScheduledTransmission::Step::kIntraSink;
      s.start_s = t;
      s.duration_s = base_slot;
      s.transmitters = {rx_members[i]};
      s.receivers = {rx_members.front()};
      s.tx_energy_j = (plan.local_tx_pa + plan.local_tx_circuit) * bits;
      t += s.duration_s;
      sched.slots.push_back(std::move(s));
    }
  }

  sched.makespan_s = t;
  sched.payload_bits = bits;
  return sched;
}

}  // namespace comimo
