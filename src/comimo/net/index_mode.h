// Node-layer index selection: grid-accelerated vs O(n²) reference.
//
// Every spatial computation of the network layer (d-clustering, link
// derivation, carrier sensing, interference checks) exists twice: the
// original O(n²) pairwise-scan *reference* implementation and the
// grid-indexed path that makes per-node work O(1).  The two are
// bit-identical by construction — the grid only prunes candidates that
// provably fail the exact predicate, and surviving candidates are
// evaluated with the same expressions in the same order — and the
// differential suite (tests/test_spatial_index.cpp) holds them to it.
// The reference stays compiled in behind this switch so any regression
// can always be cross-checked.
#pragma once

#include <string>

namespace comimo {

enum class NetIndexMode {
  kGrid,       ///< spatial grid index; O(1) expected work per node
  kReference,  ///< original O(n²) pairwise scans (the oracle)
};

/// Process-wide default consumed by config default-initializers
/// (CoMimoNetConfig, SpatialCsmaConfig) and the d_clustering overload
/// that does not take an explicit mode.  Starts as kGrid.
[[nodiscard]] NetIndexMode net_index_mode() noexcept;
void set_net_index_mode(NetIndexMode mode) noexcept;

[[nodiscard]] const char* to_string(NetIndexMode mode) noexcept;
/// Parses "grid" / "reference"; throws InvalidArgument otherwise.
[[nodiscard]] NetIndexMode parse_net_index_mode(const std::string& name);

}  // namespace comimo
