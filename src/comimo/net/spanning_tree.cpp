#include "comimo/net/spanning_tree.h"

#include <algorithm>
#include <queue>

#include "comimo/common/error.h"

namespace comimo {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), components_(n) {
  for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
}

std::size_t UnionFind::find(std::size_t x) {
  COMIMO_DCHECK(x < parent_.size(), "union-find index out of range");
  std::size_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const std::size_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::unite(std::size_t x, std::size_t y) {
  std::size_t rx = find(x);
  std::size_t ry = find(y);
  if (rx == ry) return false;
  if (rank_[rx] < rank_[ry]) std::swap(rx, ry);
  parent_[ry] = rx;
  if (rank_[rx] == rank_[ry]) ++rank_[rx];
  --components_;
  return true;
}

RoutingBackbone::RoutingBackbone(const CoMimoNet& net)
    : num_clusters_(net.clusters().size()),
      adjacency_(net.clusters().size()),
      component_(net.clusters().size()) {
  std::vector<CoopLink> links = net.links();
  std::sort(links.begin(), links.end(),
            [](const CoopLink& a, const CoopLink& b) {
              if (a.length_m != b.length_m) return a.length_m < b.length_m;
              if (a.a != b.a) return a.a < b.a;
              return a.b < b.b;
            });
  UnionFind uf(num_clusters_);
  for (const auto& l : links) {
    if (uf.unite(l.a, l.b)) {
      edges_.push_back(l);
      adjacency_[l.a].push_back(l.b);
      adjacency_[l.b].push_back(l.a);
    }
  }
  for (std::size_t i = 0; i < num_clusters_; ++i) {
    component_[i] = uf.find(i);
  }
  num_components_ = uf.num_components();
}

bool RoutingBackbone::connected(ClusterId a, ClusterId b) const {
  COMIMO_CHECK(a < num_clusters_ && b < num_clusters_,
               "cluster id out of range");
  return component_[a] == component_[b];
}

std::optional<std::vector<ClusterId>> RoutingBackbone::path(
    ClusterId from, ClusterId to) const {
  COMIMO_CHECK(from < num_clusters_ && to < num_clusters_,
               "cluster id out of range");
  if (!connected(from, to)) return std::nullopt;
  if (from == to) return std::vector<ClusterId>{from};
  // BFS on the tree (paths are unique).
  std::vector<ClusterId> parent(num_clusters_, from);
  std::vector<bool> visited(num_clusters_, false);
  std::queue<ClusterId> queue;
  queue.push(from);
  visited[from] = true;
  while (!queue.empty()) {
    const ClusterId u = queue.front();
    queue.pop();
    if (u == to) break;
    for (const ClusterId v : adjacency_[u]) {
      if (!visited[v]) {
        visited[v] = true;
        parent[v] = u;
        queue.push(v);
      }
    }
  }
  std::vector<ClusterId> path;
  for (ClusterId cur = to;; cur = parent[cur]) {
    path.push_back(cur);
    if (cur == from) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

double RoutingBackbone::total_length() const noexcept {
  double total = 0.0;
  for (const auto& e : edges_) total += e.length_m;
  return total;
}

}  // namespace comimo
