#include "comimo/net/routing.h"

#include <algorithm>

#include "comimo/common/error.h"

namespace comimo {

CooperativeRouter::CooperativeRouter(const CoMimoNet& net,
                                     const SystemParams& params, double ber,
                                     double bandwidth_hz, RoutingMode mode)
    : net_(net),
      backbone_(net),
      hop_planner_(params),
      ber_(ber),
      bandwidth_hz_(bandwidth_hz),
      mode_(mode) {}

RouteReport CooperativeRouter::route(NodeId source,
                                     NodeId destination) const {
  const ClusterId from = net_.cluster_of(source);
  const ClusterId to = net_.cluster_of(destination);
  const auto path = backbone_.path(from, to);
  if (!path) {
    throw InfeasibleError("no backbone path between source and destination");
  }
  RouteReport report;
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    const ClusterId a = (*path)[i];
    const ClusterId b = (*path)[i + 1];
    const CoopLink* link = net_.link_between(a, b);
    COMIMO_CHECK(link != nullptr, "backbone edge missing from link set");
    UnderlayHopConfig cfg;
    if (mode_ == RoutingMode::kSisoHeadsOnly) {
      cfg.mt = 1;
      cfg.mr = 1;
    } else {
      cfg.mt = static_cast<unsigned>(net_.clusters()[a].size());
      cfg.mr = static_cast<unsigned>(net_.clusters()[b].size());
    }
    cfg.hop_distance_m = link->length_m;
    cfg.cluster_diameter_m = std::max(
        {net_.cluster_diameter_of(a), net_.cluster_diameter_of(b), 1.0});
    cfg.ber = ber_;
    cfg.bandwidth_hz = bandwidth_hz_;
    RouteHop hop;
    hop.from = a;
    hop.to = b;
    hop.kind = net_.link_kind(a, b);
    hop.plan = hop_planner_.plan(cfg);
    report.total_energy_per_bit += hop.plan.total_energy();
    report.peak_pa_per_bit =
        std::max(report.peak_pa_per_bit, hop.plan.peak_pa());
    report.hops.push_back(std::move(hop));
  }
  return report;
}

// The plan's mt/mr decide how many cluster members participate
// (heads-only SISO routing plans with mt = mr = 1, so only the heads
// are charged).
std::vector<NodeId> hop_participants(const Cluster& cluster, unsigned m) {
  std::vector<NodeId> out{cluster.head};
  for (const NodeId member : cluster.members) {
    if (out.size() >= m) break;
    if (member != cluster.head) out.push_back(member);
  }
  return out;
}

void CooperativeRouter::apply_hop_drain(CoMimoNet& net, const RouteHop& hop,
                                        double bits,
                                        std::vector<NodeId>* touched) const {
  COMIMO_CHECK(bits >= 0.0, "negative bit count");
  const auto& plan = hop.plan;
  const std::vector<NodeId> tx =
      hop_participants(net.clusters()[hop.from], plan.config.mt);
  const std::vector<NodeId> rx =
      hop_participants(net.clusters()[hop.to], plan.config.mr);
  // Transmit side: every participant pays the long-haul transmission;
  // the head additionally pays the local broadcast (when mt > 1), the
  // other participants the local reception.
  for (const NodeId m : tx) {
    double e = plan.mimo_tx_pa + plan.mimo_tx_circuit;
    if (tx.size() > 1) {
      e += (m == tx.front()) ? plan.local_tx_pa + plan.local_tx_circuit
                             : plan.local_rx;
    }
    net.mutable_node(m).battery_j -= e * bits;
    if (touched != nullptr) touched->push_back(m);
  }
  // Receive side: every participant pays the long-haul reception;
  // non-head participants additionally forward to the head, which
  // pays the receptions.
  for (const NodeId m : rx) {
    double e = plan.mimo_rx;
    if (rx.size() > 1) {
      e += (m == rx.front())
               ? static_cast<double>(rx.size() - 1) * plan.local_rx
               : plan.local_tx_pa + plan.local_tx_circuit;
    }
    net.mutable_node(m).battery_j -= e * bits;
    if (touched != nullptr) touched->push_back(m);
  }
}

void CooperativeRouter::apply_battery_drain(CoMimoNet& net,
                                            const RouteReport& report,
                                            double bits) const {
  COMIMO_CHECK(bits >= 0.0, "negative bit count");
  for (const auto& hop : report.hops) {
    apply_hop_drain(net, hop, bits);
  }
}

}  // namespace comimo
