#include "comimo/net/comimonet.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/numeric/rng.h"
#include "comimo/obs/metrics.h"

namespace comimo {

CoMimoNet::CoMimoNet(std::vector<SuNode> nodes, const CoMimoNetConfig& config)
    : nodes_(std::move(nodes)), config_(config) {
  COMIMO_CHECK(!nodes_.empty(), "network needs at least one node");
  COMIMO_CHECK(config.cluster_diameter_m <= config.communication_range_m,
               "d must be <= communication range r (§2.1)");
  rebuild_node_index();
  clusters_ =
      d_clustering(nodes_, config.cluster_diameter_m, config.index_mode);
  rebuild_node_cluster();
  if (config_.index_mode == NetIndexMode::kGrid) {
    std::vector<std::uint32_t> keys(nodes_.size());
    std::vector<Vec2> positions(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      keys[i] = nodes_[i].id;
      positions[i] = nodes_[i].position;
    }
    node_grid_ =
        SpatialGrid(keys, positions, config.cluster_diameter_m / 2.0);
    build_links_grid();
  } else {
    build_links_reference();
  }
  build_adjacency();
}

void CoMimoNet::rebuild_node_index() {
  NodeId max_id = 0;
  for (const auto& n : nodes_) max_id = std::max(max_id, n.id);
  node_index_.assign(static_cast<std::size_t>(max_id) + 1, ~std::size_t{0});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    COMIMO_CHECK(node_index_[nodes_[i].id] == ~std::size_t{0},
                 "duplicate node id");
    node_index_[nodes_[i].id] = i;
  }
}

void CoMimoNet::rebuild_node_cluster() {
  node_cluster_.assign(nodes_.size(), 0);
  for (const auto& c : clusters_) {
    for (const NodeId m : c.members) {
      node_cluster_[node_index_[m]] = c.id;
    }
  }
}

void CoMimoNet::build_links_reference() {
  links_.clear();
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    for (std::size_t j = i + 1; j < clusters_.size(); ++j) {
      const double gap = cluster_gap(nodes_, clusters_[i], clusters_[j]);
      if (gap <= config_.link_range_m) {
        links_.push_back(CoopLink{clusters_[i].id, clusters_[j].id, gap});
      }
    }
  }
}

void CoMimoNet::build_links_grid() {
  links_.clear();
  const std::size_t k = clusters_.size();
  std::vector<Vec2> seed_pos(k);
  for (std::size_t i = 0; i < k; ++i) {
    seed_pos[i] =
        nodes_[node_index_[clusters_[i].members.front()]].position;
  }
  const double range = config_.link_range_m;
  const SpatialGrid seed_grid(seed_pos, range);
  // Candidate pairs in ascending (i, j) lex order — the reference's
  // double-loop traversal.  Seeds are members of their clusters, so a
  // qualifying pair (gap <= D) always has seed distance <= gap <= D:
  // querying seeds within D misses nothing.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> cand;
  std::vector<std::uint32_t> hits;
  for (std::uint32_t i = 0; i < k; ++i) {
    hits.clear();
    seed_grid.query(seed_pos[i], range, hits);
    std::sort(hits.begin(), hits.end());
    for (const std::uint32_t j : hits) {
      if (j > i) cand.emplace_back(i, j);
    }
  }
  links_from_pairs(cand, links_);
}

void CoMimoNet::links_from_pairs(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
    std::vector<CoopLink>& out) const {
  // Gaps are computed out-of-order (possibly in parallel) into an
  // index-addressed array, then filtered serially in pair order, so the
  // output is deterministic at any thread count.
  std::vector<double> gaps(pairs.size());
  const auto compute = [&](std::size_t begin, std::size_t end) {
    for (std::size_t p = begin; p < end; ++p) {
      gaps[p] =
          gap_between(clusters_[pairs[p].first], clusters_[pairs[p].second]);
    }
  };
  constexpr std::size_t kParallelThreshold = 4096;
  if (pairs.size() >= kParallelThreshold) {
    parallel_for_chunks(ThreadPool::shared(), pairs.size(), 1024, compute);
  } else {
    compute(0, pairs.size());
  }
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    if (gaps[p] <= config_.link_range_m) {
      out.push_back(CoopLink{pairs[p].first, pairs[p].second, gaps[p]});
    }
  }
}

double CoMimoNet::gap_between(const Cluster& a, const Cluster& b) const {
  double gap = 0.0;
  for (const NodeId ma : a.members) {
    const Vec2& pa = nodes_[node_index_[ma]].position;
    for (const NodeId mb : b.members) {
      gap = std::max(gap, distance(pa, nodes_[node_index_[mb]].position));
    }
  }
  return gap;
}

void CoMimoNet::build_adjacency() {
  const std::size_t k = clusters_.size();
  adj_start_.assign(k + 1, 0);
  for (const auto& l : links_) {
    ++adj_start_[l.a + 1];
    ++adj_start_[l.b + 1];
  }
  for (std::size_t i = 0; i < k; ++i) adj_start_[i + 1] += adj_start_[i];
  adj_.assign(links_.size() * 2, AdjEntry{});
  std::vector<std::uint32_t> cursor(adj_start_.begin(), adj_start_.end() - 1);
  for (std::size_t li = 0; li < links_.size(); ++li) {
    const auto& l = links_[li];
    adj_[cursor[l.a]++] = AdjEntry{l.b, static_cast<std::uint32_t>(li)};
    adj_[cursor[l.b]++] = AdjEntry{l.a, static_cast<std::uint32_t>(li)};
  }
}

std::vector<ClusterId> CoMimoNet::neighbors(ClusterId c) const {
  // CSR rows are filled by scanning links_ in order, which reproduces
  // the original links_ scan's output order exactly.
  std::vector<ClusterId> out;
  if (static_cast<std::size_t>(c) + 1 >= adj_start_.size()) return out;
  out.reserve(adj_start_[c + 1] - adj_start_[c]);
  for (std::uint32_t e = adj_start_[c]; e < adj_start_[c + 1]; ++e) {
    out.push_back(adj_[e].neighbor);
  }
  return out;
}

const CoopLink* CoMimoNet::link_between(ClusterId a, ClusterId b) const {
  if (static_cast<std::size_t>(a) + 1 >= adj_start_.size()) return nullptr;
  for (std::uint32_t e = adj_start_[a]; e < adj_start_[a + 1]; ++e) {
    if (adj_[e].neighbor == b) return &links_[adj_[e].link];
  }
  return nullptr;
}

CoopLink::Kind CoMimoNet::link_kind(ClusterId a, ClusterId b) const {
  COMIMO_CHECK(a < clusters_.size() && b < clusters_.size(),
               "cluster id out of range");
  const std::size_t mt = clusters_[a].size();
  const std::size_t mr = clusters_[b].size();
  if (mt == 1 && mr == 1) return CoopLink::Kind::kSiso;
  if (mt == 1) return CoopLink::Kind::kSimo;
  if (mr == 1) return CoopLink::Kind::kMiso;
  return CoopLink::Kind::kMimo;
}

ClusterId CoMimoNet::cluster_of(NodeId id) const {
  COMIMO_CHECK(id < node_index_.size() &&
                   node_index_[id] != ~std::size_t{0},
               "unknown node id");
  return node_cluster_[node_index_[id]];
}

const SuNode& CoMimoNet::node(NodeId id) const {
  COMIMO_CHECK(id < node_index_.size() &&
                   node_index_[id] != ~std::size_t{0},
               "unknown node id");
  return nodes_[node_index_[id]];
}

SuNode& CoMimoNet::mutable_node(NodeId id) {
  COMIMO_CHECK(id < node_index_.size() &&
                   node_index_[id] != ~std::size_t{0},
               "unknown node id");
  return nodes_[node_index_[id]];
}

std::size_t CoMimoNet::reelect_heads() {
  std::vector<NodeId> before;
  before.reserve(clusters_.size());
  for (const auto& c : clusters_) before.push_back(c.head);
  elect_heads(nodes_, clusters_);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (clusters_[i].head != before[i]) ++changed;
  }
  return changed;
}

double CoMimoNet::cluster_diameter_of(ClusterId c) const {
  COMIMO_CHECK(c < clusters_.size(), "cluster id out of range");
  const auto& members = clusters_[c].members;
  double diam = 0.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const Vec2& pi = nodes_[node_index_[members[i]]].position;
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      diam =
          std::max(diam, distance(pi, nodes_[node_index_[members[j]]].position));
    }
  }
  return diam;
}

std::size_t CoMimoNet::approx_bytes() const {
  std::size_t bytes = nodes_.capacity() * sizeof(SuNode) +
                      node_index_.capacity() * sizeof(std::size_t) +
                      node_cluster_.capacity() * sizeof(ClusterId) +
                      links_.capacity() * sizeof(CoopLink) +
                      adj_start_.capacity() * sizeof(std::uint32_t) +
                      adj_.capacity() * sizeof(AdjEntry) + node_grid_.bytes();
  for (const auto& c : clusters_) {
    bytes += sizeof(Cluster) + c.members.capacity() * sizeof(NodeId);
  }
  return bytes;
}

void CoMimoNet::remove_nodes(const std::vector<NodeId>& ids) {
  // Dead node *indices* (present ids only, deduplicated).
  std::vector<std::size_t> dead;
  dead.reserve(ids.size());
  for (const NodeId id : ids) {
    if (id < node_index_.size() && node_index_[id] != ~std::size_t{0}) {
      dead.push_back(node_index_[id]);
    }
  }
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  if (dead.empty()) return;
  COMIMO_CHECK(dead.size() < nodes_.size(), "cannot remove every node");

  if (config_.index_mode == NetIndexMode::kReference) {
    std::vector<bool> is_dead(nodes_.size(), false);
    for (const std::size_t idx : dead) is_dead[idx] = true;
    std::vector<SuNode> survivors;
    survivors.reserve(nodes_.size() - dead.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (!is_dead[i]) survivors.push_back(nodes_[i]);
    }
    *this = CoMimoNet(std::move(survivors), config_);
    return;
  }

  const std::size_t n = nodes_.size();
  const std::size_t old_k = clusters_.size();
  const double d = config_.cluster_diameter_m;

  // Per-node state during the suffix recompute.  Cluster ids equal
  // formation order (assigned sequentially), which the incremental
  // argument leans on throughout.
  enum : std::uint8_t { kDone = 0, kUntouched = 1, kPending = 2, kDead = 3 };
  std::vector<std::uint8_t> state(n, kDone);

  std::vector<bool> cluster_has_dead(old_k, false);
  std::size_t first_dirty = old_k;  // first cluster whose *seed* died
  for (const std::size_t idx : dead) {
    const ClusterId c = node_cluster_[idx];
    cluster_has_dead[c] = true;
    if (node_index_[clusters_[c].members.front()] == idx) {
      first_dirty = std::min(first_dirty, static_cast<std::size_t>(c));
    }
  }
  for (std::size_t c = first_dirty; c < old_k; ++c) {
    for (const NodeId m : clusters_[c].members) {
      state[node_index_[m]] = kUntouched;
    }
  }
  for (const std::size_t idx : dead) {
    state[idx] = kDead;
    node_grid_.remove(nodes_[idx].id, nodes_[idx].position);
  }

  // A dead non-seed member never changes another node's absorb
  // decision, so clusters formed before the first dead seed survive
  // verbatim minus their own dead members.  Trim them in place.
  for (std::size_t c = 0; c < first_dirty; ++c) {
    if (!cluster_has_dead[c]) continue;
    auto& members = clusters_[c].members;
    members.erase(std::remove_if(members.begin(), members.end(),
                                 [&](NodeId m) {
                                   return state[node_index_[m]] == kDead;
                                 }),
                  members.end());
  }

  // Greedy re-clustering of the suffix with fast-forward convergence:
  // a min-heap of freed node indices tracks the "free agents"; when it
  // drains, the remaining pool is exactly the union of untouched old
  // clusters, so they copy verbatim until the next dead seed.
  std::vector<Cluster> suffix;
  std::vector<std::size_t> suffix_old_id;  // old id, or old_k if newly formed
  std::vector<bool> dissolved(old_k, false);
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      std::greater<std::size_t>>
      heap;
  const auto dissolve = [&](std::size_t c) {
    dissolved[c] = true;
    for (const NodeId m : clusters_[c].members) {
      const std::size_t idx = node_index_[m];
      if (state[idx] == kUntouched) {
        state[idx] = kPending;
        heap.push(idx);
      }
    }
  };

  std::size_t o = first_dirty;
  std::vector<std::uint32_t> hits;
  std::vector<std::size_t> cand;
  while (true) {
    // Advance past processed clusters; a dead-seed cluster can never
    // copy verbatim, so dissolve it on sight.
    while (o < old_k) {
      if (dissolved[o]) {
        ++o;
      } else if (state[node_index_[clusters_[o].members.front()]] == kDead) {
        dissolve(o);
        ++o;
      } else {
        break;
      }
    }
    while (!heap.empty() && state[heap.top()] != kPending) heap.pop();
    if (heap.empty() && o == old_k) break;

    if (heap.empty()) {
      // Fast-forward: no free agents pending, so the next greedy seed
      // is this cluster's own seed and it re-absorbs exactly its alive
      // members.
      Cluster nc;
      nc.head = clusters_[o].head;
      for (const NodeId m : clusters_[o].members) {
        const std::size_t idx = node_index_[m];
        if (state[idx] == kDead) continue;
        state[idx] = kDone;
        nc.members.push_back(m);
      }
      suffix_old_id.push_back(o);
      suffix.push_back(std::move(nc));
      ++o;
      continue;
    }

    // Next greedy seed: the smallest unassigned index, which is the
    // heap minimum or the first untouched cluster's seed (members of
    // later untouched clusters all have larger indices).
    std::size_t s = heap.top();
    if (o < old_k) {
      const std::size_t old_seed =
          node_index_[clusters_[o].members.front()];
      if (old_seed < s) {
        dissolve(o);
        ++o;
        s = old_seed;
      }
    }
    state[s] = kDone;
    Cluster nc;
    nc.members.push_back(nodes_[s].id);
    hits.clear();
    node_grid_.query(nodes_[s].position, d / 2.0, hits);
    cand.clear();
    for (const std::uint32_t id : hits) cand.push_back(node_index_[id]);
    std::sort(cand.begin(), cand.end());
    for (const std::size_t j : cand) {
      if (state[j] == kUntouched) {
        // Stealing a member breaks its old cluster's verbatim-copy
        // guarantee: dissolve the remainder into the free pool.
        dissolve(node_cluster_[j]);
      }
      if (state[j] != kPending) continue;
      state[j] = kDone;
      nc.members.push_back(nodes_[j].id);
    }
    suffix_old_id.push_back(old_k);
    suffix.push_back(std::move(nc));
  }

  // Splice the new suffix in and renumber sequentially (prefix ids are
  // already 0..first_dirty-1).  The old-id → new-id remap is filled
  // only for clusters whose member list is byte-for-byte unchanged —
  // their cached link gaps stay valid.
  constexpr std::uint32_t kNoRemap = ~std::uint32_t{0};
  std::vector<std::uint32_t> remap(old_k, kNoRemap);
  for (std::size_t c = 0; c < first_dirty; ++c) {
    if (!cluster_has_dead[c]) remap[c] = static_cast<std::uint32_t>(c);
  }
  std::vector<ClusterId> changed;  // new ids needing link recompute
  for (std::size_t c = 0; c < first_dirty; ++c) {
    if (cluster_has_dead[c]) changed.push_back(static_cast<ClusterId>(c));
  }
  clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(first_dirty),
                  clusters_.end());
  for (std::size_t s = 0; s < suffix.size(); ++s) {
    const auto new_id = static_cast<ClusterId>(first_dirty + s);
    suffix[s].id = new_id;
    const std::size_t old_id = suffix_old_id[s];
    if (old_id < old_k && !cluster_has_dead[old_id]) {
      remap[old_id] = new_id;
    } else {
      changed.push_back(new_id);
    }
    clusters_.push_back(std::move(suffix[s]));
  }

  // Drop the dead from nodes_ (stable order) and refresh the id maps.
  std::vector<bool> is_dead(n, false);
  for (const std::size_t idx : dead) {
    is_dead[idx] = true;
    node_index_[nodes_[idx].id] = ~std::size_t{0};
  }
  std::size_t w = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_dead[i]) continue;
    if (w != i) nodes_[w] = nodes_[i];
    ++w;
  }
  nodes_.resize(w);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    node_index_[nodes_[i].id] = i;
  }
  rebuild_node_cluster();

  // Head election over every cluster from current batteries — exactly
  // what the from-scratch constructor does (same reduction, same
  // tie-break), at O(n) cost.
  for (auto& c : clusters_) {
    NodeId best = c.members.front();
    double best_battery = nodes_[node_index_[best]].battery_j;
    for (const NodeId m : c.members) {
      const double battery = nodes_[node_index_[m]].battery_j;
      if (battery > best_battery ||
          (battery == best_battery && m < best)) {
        best = m;
        best_battery = battery;
      }
    }
    c.head = best;
  }

  // Links: keep old links between unchanged clusters (the remap is
  // monotone, so their lex order survives; gaps are cached values the
  // full rebuild would recompute identically), and recompute pairs
  // involving a changed cluster via a seed-grid query — a qualifying
  // pair's seed distance is bounded by its gap, so radius D suffices.
  std::vector<CoopLink> kept;
  kept.reserve(links_.size());
  for (const auto& l : links_) {
    const std::uint32_t na = remap[l.a];
    const std::uint32_t nb = remap[l.b];
    if (na != kNoRemap && nb != kNoRemap) {
      kept.push_back(CoopLink{na, nb, l.length_m});
    }
  }
  const std::size_t new_k = clusters_.size();
  std::vector<Vec2> seed_pos(new_k);
  for (std::size_t i = 0; i < new_k; ++i) {
    seed_pos[i] = nodes_[node_index_[clusters_[i].members.front()]].position;
  }
  const SpatialGrid seed_grid(seed_pos, config_.link_range_m);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const ClusterId c : changed) {
    hits.clear();
    seed_grid.query(seed_pos[c], config_.link_range_m, hits);
    for (const std::uint32_t j : hits) {
      if (j == c) continue;
      pairs.emplace_back(std::min(c, j), std::max(c, j));
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  std::vector<CoopLink> fresh;
  links_from_pairs(pairs, fresh);
  links_.clear();
  links_.reserve(kept.size() + fresh.size());
  std::merge(kept.begin(), kept.end(), fresh.begin(), fresh.end(),
             std::back_inserter(links_), [](const CoopLink& x,
                                            const CoopLink& y) {
               return x.a != y.a ? x.a < y.a : x.b < y.b;
             });
  build_adjacency();

  if (obs::enabled()) {
    auto& reg = obs::MetricRegistry::global();
    reg.counter("net.incremental_recluster").add(1);
    reg.counter("net.nodes_removed").add(dead.size());
    reg.counter("net.clusters_dissolved")
        .add(static_cast<std::uint64_t>(
            std::count(dissolved.begin(), dissolved.end(), true)));
    reg.counter("net.links_recomputed").add(fresh.size());
    reg.counter("net.links_kept").add(kept.size());
  }
}

bool CoMimoNet::validate() const {
  if (!validate_clustering(nodes_, clusters_, config_.cluster_diameter_m)) {
    return false;
  }
  for (const auto& l : links_) {
    if (l.length_m > config_.link_range_m) return false;
  }
  for (const auto& c : clusters_) {
    if (c.head == kInvalidNode) return false;
    if (std::find(c.members.begin(), c.members.end(), c.head) ==
        c.members.end()) {
      return false;
    }
  }
  return true;
}

std::vector<SuNode> clustered_field(std::size_t groups,
                                    std::size_t nodes_per_group,
                                    double spread_m, double width_m,
                                    double height_m, std::uint64_t seed,
                                    double battery_lo, double battery_hi) {
  COMIMO_CHECK(groups >= 1 && nodes_per_group >= 1, "empty field request");
  COMIMO_CHECK(spread_m >= 0.0 && width_m > 0.0 && height_m > 0.0,
               "invalid field geometry");
  Rng rng(seed);
  std::vector<SuNode> nodes;
  nodes.reserve(groups * nodes_per_group);
  NodeId id = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const Vec2 anchor{rng.uniform(spread_m, width_m - spread_m),
                      rng.uniform(spread_m, height_m - spread_m)};
    for (std::size_t k = 0; k < nodes_per_group; ++k) {
      SuNode node;
      node.id = id++;
      node.position = rng.point_in_disk(anchor, spread_m);
      node.battery_j = rng.uniform(battery_lo, battery_hi);
      nodes.push_back(node);
    }
  }
  return nodes;
}

std::vector<SuNode> random_field(std::size_t n, double width_m,
                                 double height_m, std::uint64_t seed,
                                 double battery_lo, double battery_hi) {
  COMIMO_CHECK(n >= 1, "need at least one node");
  COMIMO_CHECK(width_m > 0.0 && height_m > 0.0, "field must be non-empty");
  Rng rng(seed);
  std::vector<SuNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SuNode node;
    node.id = static_cast<NodeId>(i);
    node.position = Vec2{rng.uniform(0.0, width_m), rng.uniform(0.0, height_m)};
    node.battery_j = rng.uniform(battery_lo, battery_hi);
    nodes.push_back(node);
  }
  return nodes;
}

}  // namespace comimo
