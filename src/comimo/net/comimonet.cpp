#include "comimo/net/comimonet.h"

#include <algorithm>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {

CoMimoNet::CoMimoNet(std::vector<SuNode> nodes, const CoMimoNetConfig& config)
    : nodes_(std::move(nodes)), config_(config) {
  COMIMO_CHECK(!nodes_.empty(), "network needs at least one node");
  COMIMO_CHECK(config.cluster_diameter_m <= config.communication_range_m,
               "d must be <= communication range r (§2.1)");
  // Node-id index.
  NodeId max_id = 0;
  for (const auto& n : nodes_) max_id = std::max(max_id, n.id);
  node_index_.assign(static_cast<std::size_t>(max_id) + 1, ~std::size_t{0});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    COMIMO_CHECK(node_index_[nodes_[i].id] == ~std::size_t{0},
                 "duplicate node id");
    node_index_[nodes_[i].id] = i;
  }

  clusters_ = d_clustering(nodes_, config.cluster_diameter_m);
  node_cluster_.assign(nodes_.size(), 0);
  for (const auto& c : clusters_) {
    for (const NodeId m : c.members) {
      node_cluster_[node_index_[m]] = c.id;
    }
  }

  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    for (std::size_t j = i + 1; j < clusters_.size(); ++j) {
      const double gap = cluster_gap(nodes_, clusters_[i], clusters_[j]);
      if (gap <= config.link_range_m) {
        links_.push_back(CoopLink{clusters_[i].id, clusters_[j].id, gap});
      }
    }
  }
}

std::vector<ClusterId> CoMimoNet::neighbors(ClusterId c) const {
  std::vector<ClusterId> out;
  for (const auto& l : links_) {
    if (l.a == c) out.push_back(l.b);
    if (l.b == c) out.push_back(l.a);
  }
  return out;
}

const CoopLink* CoMimoNet::link_between(ClusterId a, ClusterId b) const {
  for (const auto& l : links_) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return &l;
  }
  return nullptr;
}

CoopLink::Kind CoMimoNet::link_kind(ClusterId a, ClusterId b) const {
  COMIMO_CHECK(a < clusters_.size() && b < clusters_.size(),
               "cluster id out of range");
  const std::size_t mt = clusters_[a].size();
  const std::size_t mr = clusters_[b].size();
  if (mt == 1 && mr == 1) return CoopLink::Kind::kSiso;
  if (mt == 1) return CoopLink::Kind::kSimo;
  if (mr == 1) return CoopLink::Kind::kMiso;
  return CoopLink::Kind::kMimo;
}

ClusterId CoMimoNet::cluster_of(NodeId id) const {
  COMIMO_CHECK(id < node_index_.size() &&
                   node_index_[id] != ~std::size_t{0},
               "unknown node id");
  return node_cluster_[node_index_[id]];
}

const SuNode& CoMimoNet::node(NodeId id) const {
  COMIMO_CHECK(id < node_index_.size() &&
                   node_index_[id] != ~std::size_t{0},
               "unknown node id");
  return nodes_[node_index_[id]];
}

SuNode& CoMimoNet::mutable_node(NodeId id) {
  COMIMO_CHECK(id < node_index_.size() &&
                   node_index_[id] != ~std::size_t{0},
               "unknown node id");
  return nodes_[node_index_[id]];
}

std::size_t CoMimoNet::reelect_heads() {
  std::vector<NodeId> before;
  before.reserve(clusters_.size());
  for (const auto& c : clusters_) before.push_back(c.head);
  elect_heads(nodes_, clusters_);
  std::size_t changed = 0;
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (clusters_[i].head != before[i]) ++changed;
  }
  return changed;
}

bool CoMimoNet::validate() const {
  if (!validate_clustering(nodes_, clusters_, config_.cluster_diameter_m)) {
    return false;
  }
  for (const auto& l : links_) {
    if (l.length_m > config_.link_range_m) return false;
  }
  for (const auto& c : clusters_) {
    if (c.head == kInvalidNode) return false;
    if (std::find(c.members.begin(), c.members.end(), c.head) ==
        c.members.end()) {
      return false;
    }
  }
  return true;
}

std::vector<SuNode> clustered_field(std::size_t groups,
                                    std::size_t nodes_per_group,
                                    double spread_m, double width_m,
                                    double height_m, std::uint64_t seed,
                                    double battery_lo, double battery_hi) {
  COMIMO_CHECK(groups >= 1 && nodes_per_group >= 1, "empty field request");
  COMIMO_CHECK(spread_m >= 0.0 && width_m > 0.0 && height_m > 0.0,
               "invalid field geometry");
  Rng rng(seed);
  std::vector<SuNode> nodes;
  nodes.reserve(groups * nodes_per_group);
  NodeId id = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const Vec2 anchor{rng.uniform(spread_m, width_m - spread_m),
                      rng.uniform(spread_m, height_m - spread_m)};
    for (std::size_t k = 0; k < nodes_per_group; ++k) {
      SuNode node;
      node.id = id++;
      node.position = rng.point_in_disk(anchor, spread_m);
      node.battery_j = rng.uniform(battery_lo, battery_hi);
      nodes.push_back(node);
    }
  }
  return nodes;
}

std::vector<SuNode> random_field(std::size_t n, double width_m,
                                 double height_m, std::uint64_t seed,
                                 double battery_lo, double battery_hi) {
  COMIMO_CHECK(n >= 1, "need at least one node");
  COMIMO_CHECK(width_m > 0.0 && height_m > 0.0, "field must be non-empty");
  Rng rng(seed);
  std::vector<SuNode> nodes;
  nodes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    SuNode node;
    node.id = static_cast<NodeId>(i);
    node.position = Vec2{rng.uniform(0.0, width_m), rng.uniform(0.0, height_m)};
    node.battery_j = rng.uniform(battery_lo, battery_hi);
    nodes.push_back(node);
  }
  return nodes;
}

}  // namespace comimo
