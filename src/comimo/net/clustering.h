// d-clustering (§2.1): a node-disjoint division of V where any two nodes
// of a cluster are at most d apart (d ≤ r, the communication range).
#pragma once

#include <vector>

#include "comimo/net/node.h"

namespace comimo {

/// Greedy seed-based d-clustering: repeatedly seeds a new cluster at the
/// lowest-id unassigned node and absorbs unassigned nodes within d/2 of
/// the seed (which bounds every pairwise distance by d).  Deterministic.
[[nodiscard]] std::vector<Cluster> d_clustering(
    const std::vector<SuNode>& nodes, double d);

/// Verifies the d-clustering invariants: disjoint cover of all nodes,
/// pairwise member distance ≤ d.
[[nodiscard]] bool validate_clustering(const std::vector<SuNode>& nodes,
                                       const std::vector<Cluster>& clusters,
                                       double d);

/// Elects the highest-battery member as head of each cluster (ties break
/// to the lower node id); mutates the clusters in place.
void elect_heads(const std::vector<SuNode>& nodes,
                 std::vector<Cluster>& clusters);

/// Largest pairwise distance between members of cluster a and cluster b
/// (the D of a cooperative link, §2.1).
[[nodiscard]] double cluster_gap(const std::vector<SuNode>& nodes,
                                 const Cluster& a, const Cluster& b);

/// Cluster diameter: largest pairwise member distance.
[[nodiscard]] double cluster_diameter(const std::vector<SuNode>& nodes,
                                      const Cluster& c);

}  // namespace comimo
