// d-clustering (§2.1): a node-disjoint division of V where any two nodes
// of a cluster are at most d apart (d ≤ r, the communication range).
#pragma once

#include <vector>

#include "comimo/net/index_mode.h"
#include "comimo/net/node.h"

namespace comimo {

/// Greedy seed-based d-clustering: repeatedly seeds a new cluster at the
/// lowest-id unassigned node and absorbs unassigned nodes within d/2 of
/// the seed (which bounds every pairwise distance by d).  Deterministic.
/// This is the O(n²) reference implementation (NetIndexMode::kReference).
[[nodiscard]] std::vector<Cluster> d_clustering(
    const std::vector<SuNode>& nodes, double d);

/// Mode-dispatched d-clustering.  kGrid runs the same greedy algorithm
/// on a SpatialGrid prefilter (O(1) expected work per node) and is
/// bit-identical to the reference: candidates are screened by the exact
/// same `distance <= d/2` predicate and absorbed in the same
/// ascending-index order (tests/test_spatial_index.cpp holds the two
/// paths to equality).
[[nodiscard]] std::vector<Cluster> d_clustering(
    const std::vector<SuNode>& nodes, double d, NetIndexMode mode);

/// Verifies the d-clustering invariants: disjoint cover of all nodes,
/// pairwise member distance ≤ d.
[[nodiscard]] bool validate_clustering(const std::vector<SuNode>& nodes,
                                       const std::vector<Cluster>& clusters,
                                       double d);

/// Elects the highest-battery member as head of each cluster (ties break
/// to the lower node id); mutates the clusters in place.
void elect_heads(const std::vector<SuNode>& nodes,
                 std::vector<Cluster>& clusters);

/// Largest pairwise distance between members of cluster a and cluster b
/// (the D of a cooperative link, §2.1).
[[nodiscard]] double cluster_gap(const std::vector<SuNode>& nodes,
                                 const Cluster& a, const Cluster& b);

/// Cluster diameter: largest pairwise member distance.
[[nodiscard]] double cluster_diameter(const std::vector<SuNode>& nodes,
                                      const Cluster& c);

}  // namespace comimo
