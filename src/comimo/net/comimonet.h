// The CoMIMONet (§2.1): node graph G = (V, E), its d-clustering, and the
// cluster graph G_MIMO whose edges are cooperative MIMO links.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "comimo/net/clustering.h"
#include "comimo/net/index_mode.h"
#include "comimo/net/node.h"
#include "comimo/net/spatial_index.h"

namespace comimo {

using ClusterId = std::uint32_t;

struct CoMimoNetConfig {
  double communication_range_m = 60.0;  ///< r
  double cluster_diameter_m = 10.0;     ///< d (d ≤ r)
  double link_range_m = 250.0;          ///< max cooperative-link length D
  /// Grid-indexed vs O(n²) reference construction; both produce
  /// bit-identical clusters, heads, and links (the differential suite
  /// enforces it).  Defaults to the process-wide mode (kGrid).
  NetIndexMode index_mode = net_index_mode();
};

/// One cooperative link of G_MIMO.
struct CoopLink {
  ClusterId a = 0;
  ClusterId b = 0;
  double length_m = 0.0;  ///< the link's D (largest member gap)

  /// SISO/SIMO/MISO/MIMO classification by endpoint sizes (§2.1).
  enum class Kind { kSiso, kSimo, kMiso, kMimo };
};

class CoMimoNet {
 public:
  /// Builds the network: d-clusters the nodes, elects heads, and adds a
  /// cooperative link between every cluster pair whose largest member
  /// gap is at most link_range_m.
  CoMimoNet(std::vector<SuNode> nodes, const CoMimoNetConfig& config);

  [[nodiscard]] const std::vector<SuNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<Cluster>& clusters() const noexcept {
    return clusters_;
  }
  [[nodiscard]] const std::vector<CoopLink>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] const CoMimoNetConfig& config() const noexcept {
    return config_;
  }

  /// Clusters adjacent to `c` in G_MIMO.
  [[nodiscard]] std::vector<ClusterId> neighbors(ClusterId c) const;

  /// Link between two clusters, or nullptr when absent.
  [[nodiscard]] const CoopLink* link_between(ClusterId a, ClusterId b) const;

  /// Kind of a directed transmission a→b by endpoint sizes.
  [[nodiscard]] CoopLink::Kind link_kind(ClusterId a, ClusterId b) const;

  /// Cluster containing node `id`.
  [[nodiscard]] ClusterId cluster_of(NodeId id) const;

  /// Node lookup by id.
  [[nodiscard]] const SuNode& node(NodeId id) const;
  /// Mutable access for battery accounting.
  [[nodiscard]] SuNode& mutable_node(NodeId id);

  /// Re-elects cluster heads from the current battery levels — the
  /// §2.1 reconfiguration hook ("the clusters and the routing backbone
  /// are reconfigurable") run after traffic depletes batteries.
  /// Returns the number of clusters whose head changed.
  std::size_t reelect_heads();

  /// Largest pairwise member distance of cluster `c` — identical value
  /// to cluster_diameter(nodes(), clusters()[c]) without its O(n)
  /// id→index scans.
  [[nodiscard]] double cluster_diameter_of(ClusterId c) const;

  /// Removes the given nodes (deaths, PU preemption) and brings the
  /// clustering, heads, links, and adjacency back to exactly the state
  /// a from-scratch `CoMimoNet(survivors, config())` would produce —
  /// the incremental re-clustering contract the fuzz suite pins.
  ///
  /// In kGrid mode this is incremental: clusters formed before the
  /// first dead *seed* are kept (trimmed of their own dead members —
  /// a dead non-seed member never changes any other absorb decision),
  /// and only the suffix re-runs greedy absorption, fast-forwarding
  /// back to verbatim cluster copies as soon as the free-agent pool
  /// drains.  Links between untouched clusters keep their cached gap
  /// values.  In kReference mode it simply rebuilds from scratch.
  /// Ids not present are ignored; at least one node must survive.
  void remove_nodes(const std::vector<NodeId>& ids);

  /// Approximate heap footprint of the network representation in bytes
  /// (nodes, clusters, links, adjacency, indexes) — the bench's
  /// bytes/node accounting.
  [[nodiscard]] std::size_t approx_bytes() const;

  /// True when every node pair within a cluster is inside communication
  /// range and every link respects link_range_m — the §2.1 invariants.
  [[nodiscard]] bool validate() const;

 private:
  struct AdjEntry {
    ClusterId neighbor = 0;
    std::uint32_t link = 0;  ///< index into links_
  };

  void rebuild_node_index();
  void rebuild_node_cluster();
  void build_links_reference();
  void build_links_grid();
  /// Computes gaps for candidate (a, b) cluster pairs — in parallel
  /// when the batch is large, always deterministically — and appends
  /// the passing ones to `out` in pair order.
  void links_from_pairs(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
      std::vector<CoopLink>& out) const;
  void build_adjacency();
  /// cluster_gap with O(1) id→index lookups; same reduction order, so
  /// the same double comes out.
  [[nodiscard]] double gap_between(const Cluster& a, const Cluster& b) const;

  std::vector<SuNode> nodes_;
  CoMimoNetConfig config_;
  std::vector<Cluster> clusters_;
  std::vector<CoopLink> links_;
  std::vector<ClusterId> node_cluster_;   // node index -> cluster id
  std::vector<std::size_t> node_index_;   // node id -> index in nodes_
  // G_MIMO adjacency in CSR form, built by scanning links_ in order so
  // neighbors() reproduces the reference scan's output order exactly.
  std::vector<std::uint32_t> adj_start_;  // cluster id -> first AdjEntry
  std::vector<AdjEntry> adj_;
  SpatialGrid node_grid_;  // id-keyed; live only in kGrid mode
};

/// Generates `n` nodes uniformly in a w×h field with batteries uniform
/// in [battery_lo, battery_hi] (deterministic in the seed).
[[nodiscard]] std::vector<SuNode> random_field(std::size_t n, double width_m,
                                               double height_m,
                                               std::uint64_t seed,
                                               double battery_lo = 0.5,
                                               double battery_hi = 1.0);

/// Generates `groups` anchor points uniformly in the field and scatters
/// `nodes_per_group` nodes within `spread_m` of each anchor — the
/// grouped deployments the cooperative schemes assume (SUs close enough
/// to form d-clusters, clusters far apart).
[[nodiscard]] std::vector<SuNode> clustered_field(
    std::size_t groups, std::size_t nodes_per_group, double spread_m,
    double width_m, double height_m, std::uint64_t seed,
    double battery_lo = 0.5, double battery_hi = 1.0);

}  // namespace comimo
