// The CoMIMONet (§2.1): node graph G = (V, E), its d-clustering, and the
// cluster graph G_MIMO whose edges are cooperative MIMO links.
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/net/clustering.h"
#include "comimo/net/node.h"

namespace comimo {

using ClusterId = std::uint32_t;

struct CoMimoNetConfig {
  double communication_range_m = 60.0;  ///< r
  double cluster_diameter_m = 10.0;     ///< d (d ≤ r)
  double link_range_m = 250.0;          ///< max cooperative-link length D
};

/// One cooperative link of G_MIMO.
struct CoopLink {
  ClusterId a = 0;
  ClusterId b = 0;
  double length_m = 0.0;  ///< the link's D (largest member gap)

  /// SISO/SIMO/MISO/MIMO classification by endpoint sizes (§2.1).
  enum class Kind { kSiso, kSimo, kMiso, kMimo };
};

class CoMimoNet {
 public:
  /// Builds the network: d-clusters the nodes, elects heads, and adds a
  /// cooperative link between every cluster pair whose largest member
  /// gap is at most link_range_m.
  CoMimoNet(std::vector<SuNode> nodes, const CoMimoNetConfig& config);

  [[nodiscard]] const std::vector<SuNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] const std::vector<Cluster>& clusters() const noexcept {
    return clusters_;
  }
  [[nodiscard]] const std::vector<CoopLink>& links() const noexcept {
    return links_;
  }
  [[nodiscard]] const CoMimoNetConfig& config() const noexcept {
    return config_;
  }

  /// Clusters adjacent to `c` in G_MIMO.
  [[nodiscard]] std::vector<ClusterId> neighbors(ClusterId c) const;

  /// Link between two clusters, or nullptr when absent.
  [[nodiscard]] const CoopLink* link_between(ClusterId a, ClusterId b) const;

  /// Kind of a directed transmission a→b by endpoint sizes.
  [[nodiscard]] CoopLink::Kind link_kind(ClusterId a, ClusterId b) const;

  /// Cluster containing node `id`.
  [[nodiscard]] ClusterId cluster_of(NodeId id) const;

  /// Node lookup by id.
  [[nodiscard]] const SuNode& node(NodeId id) const;
  /// Mutable access for battery accounting.
  [[nodiscard]] SuNode& mutable_node(NodeId id);

  /// Re-elects cluster heads from the current battery levels — the
  /// §2.1 reconfiguration hook ("the clusters and the routing backbone
  /// are reconfigurable") run after traffic depletes batteries.
  /// Returns the number of clusters whose head changed.
  std::size_t reelect_heads();

  /// True when every node pair within a cluster is inside communication
  /// range and every link respects link_range_m — the §2.1 invariants.
  [[nodiscard]] bool validate() const;

 private:
  std::vector<SuNode> nodes_;
  CoMimoNetConfig config_;
  std::vector<Cluster> clusters_;
  std::vector<CoopLink> links_;
  std::vector<ClusterId> node_cluster_;   // node index -> cluster id
  std::vector<std::size_t> node_index_;   // node id -> index in nodes_
};

/// Generates `n` nodes uniformly in a w×h field with batteries uniform
/// in [battery_lo, battery_hi] (deterministic in the seed).
[[nodiscard]] std::vector<SuNode> random_field(std::size_t n, double width_m,
                                               double height_m,
                                               std::uint64_t seed,
                                               double battery_lo = 0.5,
                                               double battery_hi = 1.0);

/// Generates `groups` anchor points uniformly in the field and scatters
/// `nodes_per_group` nodes within `spread_m` of each anchor — the
/// grouped deployments the cooperative schemes assume (SUs close enough
/// to form d-clusters, clusters far apart).
[[nodiscard]] std::vector<SuNode> clustered_field(
    std::size_t groups, std::size_t nodes_per_group, double spread_m,
    double width_m, double height_m, std::uint64_t seed,
    double battery_lo = 0.5, double battery_hi = 1.0);

}  // namespace comimo
