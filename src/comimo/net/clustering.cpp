#include "comimo/net/clustering.h"

#include <algorithm>
#include <utility>

#include "comimo/common/error.h"
#include "comimo/net/spatial_index.h"

namespace comimo {

std::vector<Cluster> d_clustering(const std::vector<SuNode>& nodes,
                                  double d) {
  COMIMO_CHECK(d > 0.0, "cluster diameter must be positive");
  std::vector<bool> assigned(nodes.size(), false);
  std::vector<Cluster> clusters;
  for (std::size_t seed = 0; seed < nodes.size(); ++seed) {
    if (assigned[seed]) continue;
    Cluster c;
    c.id = static_cast<std::uint32_t>(clusters.size());
    c.members.push_back(nodes[seed].id);
    assigned[seed] = true;
    for (std::size_t j = seed + 1; j < nodes.size(); ++j) {
      if (assigned[j]) continue;
      if (distance(nodes[seed].position, nodes[j].position) <= d / 2.0) {
        c.members.push_back(nodes[j].id);
        assigned[j] = true;
      }
    }
    clusters.push_back(std::move(c));
  }
  elect_heads(nodes, clusters);
  return clusters;
}

std::vector<Cluster> d_clustering(const std::vector<SuNode>& nodes, double d,
                                  NetIndexMode mode) {
  if (mode == NetIndexMode::kReference) return d_clustering(nodes, d);
  COMIMO_CHECK(d > 0.0, "cluster diameter must be positive");
  const std::size_t n = nodes.size();
  std::vector<Vec2> positions(n);
  for (std::size_t i = 0; i < n; ++i) positions[i] = nodes[i].position;
  // Keys are node *indices*: the grid prefilters candidates, the exact
  // `distance <= d/2` test inside for_each_within is the same predicate
  // the reference absorb loop evaluates, and sorting the hits restores
  // the reference's ascending-index traversal — hence bit-identity.
  const SpatialGrid grid(positions, d / 2.0);
  std::vector<bool> assigned(n, false);
  std::vector<Cluster> clusters;
  std::vector<std::uint32_t> hits;
  for (std::size_t seed = 0; seed < n; ++seed) {
    if (assigned[seed]) continue;
    Cluster c;
    c.id = static_cast<std::uint32_t>(clusters.size());
    c.members.push_back(nodes[seed].id);
    assigned[seed] = true;
    hits.clear();
    grid.query(positions[seed], d / 2.0, hits);
    std::sort(hits.begin(), hits.end());
    for (const std::uint32_t j : hits) {
      if (j <= seed || assigned[j]) continue;
      c.members.push_back(nodes[j].id);
      assigned[j] = true;
    }
    clusters.push_back(std::move(c));
  }
  elect_heads(nodes, clusters);
  return clusters;
}

namespace {
std::size_t index_of(const std::vector<SuNode>& nodes, NodeId id) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].id == id) return i;
  }
  throw InvalidArgument("unknown node id in cluster");
}

/// O(log n) id→index lookups for the whole-network passes (elect_heads
/// ran index_of per member, which was a hidden O(n²) at scale).
class NodeIdLookup {
 public:
  explicit NodeIdLookup(const std::vector<SuNode>& nodes) {
    by_id_.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      by_id_.emplace_back(nodes[i].id, i);
    }
    std::sort(by_id_.begin(), by_id_.end());
  }

  [[nodiscard]] std::size_t index(NodeId id) const {
    const auto it = std::lower_bound(
        by_id_.begin(), by_id_.end(),
        std::pair<NodeId, std::size_t>{id, 0});
    if (it == by_id_.end() || it->first != id) {
      throw InvalidArgument("unknown node id in cluster");
    }
    return it->second;
  }

 private:
  std::vector<std::pair<NodeId, std::size_t>> by_id_;
};
}  // namespace

bool validate_clustering(const std::vector<SuNode>& nodes,
                         const std::vector<Cluster>& clusters, double d) {
  const NodeIdLookup lookup(nodes);
  std::vector<int> seen(nodes.size(), 0);
  for (const auto& c : clusters) {
    if (c.members.empty()) return false;
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      const std::size_t ni = lookup.index(c.members[i]);
      ++seen[ni];
      for (std::size_t j = i + 1; j < c.members.size(); ++j) {
        const std::size_t nj = lookup.index(c.members[j]);
        if (distance(nodes[ni].position, nodes[nj].position) > d) {
          return false;
        }
      }
    }
  }
  // Disjoint cover: every node in exactly one cluster.
  return std::all_of(seen.begin(), seen.end(),
                     [](int count) { return count == 1; });
}

void elect_heads(const std::vector<SuNode>& nodes,
                 std::vector<Cluster>& clusters) {
  const NodeIdLookup lookup(nodes);
  for (auto& c : clusters) {
    COMIMO_CHECK(!c.members.empty(), "empty cluster");
    NodeId best = c.members.front();
    double best_battery = nodes[lookup.index(best)].battery_j;
    for (const NodeId m : c.members) {
      const double battery = nodes[lookup.index(m)].battery_j;
      if (battery > best_battery ||
          (battery == best_battery && m < best)) {
        best = m;
        best_battery = battery;
      }
    }
    c.head = best;
  }
}

double cluster_gap(const std::vector<SuNode>& nodes, const Cluster& a,
                   const Cluster& b) {
  double gap = 0.0;
  for (const NodeId ma : a.members) {
    const auto& pa = nodes[index_of(nodes, ma)].position;
    for (const NodeId mb : b.members) {
      const auto& pb = nodes[index_of(nodes, mb)].position;
      gap = std::max(gap, distance(pa, pb));
    }
  }
  return gap;
}

double cluster_diameter(const std::vector<SuNode>& nodes, const Cluster& c) {
  double diam = 0.0;
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    const auto& pi = nodes[index_of(nodes, c.members[i])].position;
    for (std::size_t j = i + 1; j < c.members.size(); ++j) {
      const auto& pj = nodes[index_of(nodes, c.members[j])].position;
      diam = std::max(diam, distance(pi, pj));
    }
  }
  return diam;
}

}  // namespace comimo
