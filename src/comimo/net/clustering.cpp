#include "comimo/net/clustering.h"

#include <algorithm>

#include "comimo/common/error.h"

namespace comimo {

std::vector<Cluster> d_clustering(const std::vector<SuNode>& nodes,
                                  double d) {
  COMIMO_CHECK(d > 0.0, "cluster diameter must be positive");
  std::vector<bool> assigned(nodes.size(), false);
  std::vector<Cluster> clusters;
  for (std::size_t seed = 0; seed < nodes.size(); ++seed) {
    if (assigned[seed]) continue;
    Cluster c;
    c.id = static_cast<std::uint32_t>(clusters.size());
    c.members.push_back(nodes[seed].id);
    assigned[seed] = true;
    for (std::size_t j = seed + 1; j < nodes.size(); ++j) {
      if (assigned[j]) continue;
      if (distance(nodes[seed].position, nodes[j].position) <= d / 2.0) {
        c.members.push_back(nodes[j].id);
        assigned[j] = true;
      }
    }
    clusters.push_back(std::move(c));
  }
  elect_heads(nodes, clusters);
  return clusters;
}

namespace {
std::size_t index_of(const std::vector<SuNode>& nodes, NodeId id) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].id == id) return i;
  }
  throw InvalidArgument("unknown node id in cluster");
}
}  // namespace

bool validate_clustering(const std::vector<SuNode>& nodes,
                         const std::vector<Cluster>& clusters, double d) {
  std::vector<int> seen(nodes.size(), 0);
  for (const auto& c : clusters) {
    if (c.members.empty()) return false;
    for (std::size_t i = 0; i < c.members.size(); ++i) {
      const std::size_t ni = index_of(nodes, c.members[i]);
      ++seen[ni];
      for (std::size_t j = i + 1; j < c.members.size(); ++j) {
        const std::size_t nj = index_of(nodes, c.members[j]);
        if (distance(nodes[ni].position, nodes[nj].position) > d) {
          return false;
        }
      }
    }
  }
  // Disjoint cover: every node in exactly one cluster.
  return std::all_of(seen.begin(), seen.end(),
                     [](int count) { return count == 1; });
}

void elect_heads(const std::vector<SuNode>& nodes,
                 std::vector<Cluster>& clusters) {
  for (auto& c : clusters) {
    COMIMO_CHECK(!c.members.empty(), "empty cluster");
    NodeId best = c.members.front();
    double best_battery = nodes[index_of(nodes, best)].battery_j;
    for (const NodeId m : c.members) {
      const double battery = nodes[index_of(nodes, m)].battery_j;
      if (battery > best_battery ||
          (battery == best_battery && m < best)) {
        best = m;
        best_battery = battery;
      }
    }
    c.head = best;
  }
}

double cluster_gap(const std::vector<SuNode>& nodes, const Cluster& a,
                   const Cluster& b) {
  double gap = 0.0;
  for (const NodeId ma : a.members) {
    const auto& pa = nodes[index_of(nodes, ma)].position;
    for (const NodeId mb : b.members) {
      const auto& pb = nodes[index_of(nodes, mb)].position;
      gap = std::max(gap, distance(pa, pb));
    }
  }
  return gap;
}

double cluster_diameter(const std::vector<SuNode>& nodes, const Cluster& c) {
  double diam = 0.0;
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    const auto& pi = nodes[index_of(nodes, c.members[i])].position;
    for (std::size_t j = i + 1; j < c.members.size(); ++j) {
      const auto& pj = nodes[index_of(nodes, c.members[j])].position;
      diam = std::max(diam, distance(pi, pj));
    }
  }
  return diam;
}

}  // namespace comimo
