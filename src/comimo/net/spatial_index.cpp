#include "comimo/net/spatial_index.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "comimo/common/error.h"
#include "comimo/net/index_mode.h"

namespace comimo {

namespace {
std::atomic<int> g_index_mode{static_cast<int>(NetIndexMode::kGrid)};
}  // namespace

NetIndexMode net_index_mode() noexcept {
  return static_cast<NetIndexMode>(g_index_mode.load(std::memory_order_relaxed));
}

void set_net_index_mode(NetIndexMode mode) noexcept {
  g_index_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

const char* to_string(NetIndexMode mode) noexcept {
  return mode == NetIndexMode::kGrid ? "grid" : "reference";
}

NetIndexMode parse_net_index_mode(const std::string& name) {
  if (name == "grid") return NetIndexMode::kGrid;
  if (name == "reference") return NetIndexMode::kReference;
  throw InvalidArgument("unknown net index mode: " + name);
}

SpatialGrid::SpatialGrid(const std::vector<std::uint32_t>& keys,
                         const std::vector<Vec2>& positions,
                         double cell_hint_m) {
  COMIMO_CHECK(keys.size() == positions.size(),
               "spatial grid: keys/positions size mismatch");
  COMIMO_CHECK(cell_hint_m > 0.0, "spatial grid: cell size must be positive");
  const std::size_t n = positions.size();
  live_ = n;
  cell_hint_m_ = cell_hint_m;
  if (n == 0) {
    nx_ = ny_ = 1;
    cell_m_ = cell_hint_m;
    cell_start_.assign(2, 0);
    return;
  }

  double max_x = positions[0].x, max_y = positions[0].y;
  min_x_ = positions[0].x;
  min_y_ = positions[0].y;
  for (const Vec2& p : positions) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const double ext_x = max_x - min_x_;
  const double ext_y = max_y - min_y_;
  // Cap the table at ~2 cells per item so the offsets stay O(n) bytes
  // even when the hint is tiny relative to the field.
  cell_m_ = cell_hint_m;
  const double cell_cap = static_cast<double>(std::max<std::size_t>(n, 16) * 2);
  for (int iter = 0; iter < 64; ++iter) {
    const double fx = std::floor(ext_x / cell_m_) + 1.0;
    const double fy = std::floor(ext_y / cell_m_) + 1.0;
    if (fx * fy <= cell_cap) break;
    cell_m_ *= std::sqrt(fx * fy / cell_cap) * 1.0000001;
  }
  nx_ = static_cast<std::uint32_t>(std::floor(ext_x / cell_m_)) + 1;
  ny_ = static_cast<std::uint32_t>(std::floor(ext_y / cell_m_)) + 1;

  // Counting sort into CSR cells; build order within a cell is input
  // order (callers re-sort query hits into their own traversal order).
  const std::size_t cells = static_cast<std::size_t>(nx_) * ny_;
  cell_start_.assign(cells + 1, 0);
  std::vector<std::uint32_t> cell_index(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = cell_of(positions[i]);
    cell_index[i] = static_cast<std::uint32_t>(c);
    ++cell_start_[c + 1];
  }
  std::partial_sum(cell_start_.begin(), cell_start_.end(),
                   cell_start_.begin());
  slots_.resize(n);
  std::vector<std::uint32_t> cursor(cell_start_.begin(),
                                    cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    COMIMO_CHECK(keys[i] != kTombstone, "spatial grid: reserved key");
    Slot& slot = slots_[cursor[cell_index[i]]++];
    slot.key = keys[i];
    slot.position = positions[i];
  }
}

SpatialGrid::SpatialGrid(const std::vector<Vec2>& positions,
                         double cell_hint_m)
    : SpatialGrid(
          [&positions] {
            std::vector<std::uint32_t> keys(positions.size());
            std::iota(keys.begin(), keys.end(), 0u);
            return keys;
          }(),
          positions, cell_hint_m) {}

std::size_t SpatialGrid::cell_of(const Vec2& p) const noexcept {
  const double gx = std::floor((p.x - min_x_) / cell_m_);
  const double gy = std::floor((p.y - min_y_) / cell_m_);
  const std::uint32_t cx = static_cast<std::uint32_t>(
      std::clamp(gx, 0.0, static_cast<double>(nx_ - 1)));
  const std::uint32_t cy = static_cast<std::uint32_t>(
      std::clamp(gy, 0.0, static_cast<double>(ny_ - 1)));
  return static_cast<std::size_t>(cy) * nx_ + cx;
}

void SpatialGrid::cell_range(const Vec2& center, double radius,
                             std::uint32_t& cx0, std::uint32_t& cx1,
                             std::uint32_t& cy0,
                             std::uint32_t& cy1) const noexcept {
  // One extra cell of margin on every side: any item within `radius`
  // has |dx|,|dy| <= radius, so even with worst-case rounding of the
  // floor arguments its cell cannot lie outside the padded range.
  const double lo_x = std::floor((center.x - radius - min_x_) / cell_m_) - 1.0;
  const double hi_x = std::floor((center.x + radius - min_x_) / cell_m_) + 1.0;
  const double lo_y = std::floor((center.y - radius - min_y_) / cell_m_) - 1.0;
  const double hi_y = std::floor((center.y + radius - min_y_) / cell_m_) + 1.0;
  cx0 = static_cast<std::uint32_t>(
      std::clamp(lo_x, 0.0, static_cast<double>(nx_ - 1)));
  cx1 = static_cast<std::uint32_t>(
      std::clamp(hi_x, 0.0, static_cast<double>(nx_ - 1)));
  cy0 = static_cast<std::uint32_t>(
      std::clamp(lo_y, 0.0, static_cast<double>(ny_ - 1)));
  cy1 = static_cast<std::uint32_t>(
      std::clamp(hi_y, 0.0, static_cast<double>(ny_ - 1)));
}

void SpatialGrid::query(const Vec2& center, double radius,
                        std::vector<std::uint32_t>& out) const {
  for_each_within(center, radius,
                  [&out](std::uint32_t key, const Vec2&) {
                    out.push_back(key);
                  });
}

void SpatialGrid::remove(std::uint32_t key, const Vec2& position) {
  if (slots_.empty()) return;
  const std::size_t cell = cell_of(position);
  const std::uint32_t end = cell_start_[cell + 1];
  for (std::uint32_t s = cell_start_[cell]; s < end; ++s) {
    if (slots_[s].key == key) {
      slots_[s].key = kTombstone;
      --live_;
      ++dead_;
      // Threshold-triggered compaction: once the dead outnumber the
      // living (past a small floor that keeps tiny indexes free of
      // rebuild churn), the amortized cost is O(1) per removal while
      // scans and memory stay proportional to the live population.
      if (dead_ > live_ && dead_ >= 64) compact();
      return;
    }
  }
}

void SpatialGrid::compact() {
  if (dead_ == 0) return;
  // Gather survivors in slot (cell-major) order and rebuild through the
  // constructor: fresh bounding box, fresh cell geometry from the
  // original hint, fresh CSR — the exact state a from-scratch build
  // over the live set would produce, which is what keeps the
  // cells/live-item cap and the incremental-vs-rebuild differential
  // tests honest.
  std::vector<std::uint32_t> keys;
  std::vector<Vec2> positions;
  keys.reserve(live_);
  positions.reserve(live_);
  for (const Slot& slot : slots_) {
    if (slot.key == kTombstone) continue;
    keys.push_back(slot.key);
    positions.push_back(slot.position);
  }
  *this = SpatialGrid(keys, positions, cell_hint_m_);
}

std::size_t SpatialGrid::bytes() const noexcept {
  return cell_start_.capacity() * sizeof(std::uint32_t) +
         slots_.capacity() * sizeof(Slot);
}

}  // namespace comimo
