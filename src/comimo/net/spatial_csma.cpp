#include "comimo/net/spatial_csma.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "comimo/common/error.h"
#include "comimo/net/spatial_index.h"
#include "comimo/numeric/rng.h"

namespace comimo {

namespace {
struct StationState {
  std::deque<double> arrivals;
  std::uint64_t backoff = 0;
  unsigned cw = 0;
  unsigned retries = 0;
  bool contending = false;
  // In-flight transmission, if any.
  bool transmitting = false;
  std::uint64_t tx_end_slot = 0;
  bool corrupted = false;  // another tx hit our receiver mid-frame
};
}  // namespace

SpatialCsmaSimulator::SpatialCsmaSimulator(
    SpatialCsmaConfig config, std::vector<SpatialStation> stations)
    : config_(config), stations_(std::move(stations)) {
  COMIMO_CHECK(!stations_.empty(), "simulator needs at least one station");
  COMIMO_CHECK(config.slot_time_s > 0.0 && config.bitrate_bps > 0.0,
               "invalid timing parameters");
  COMIMO_CHECK(config.carrier_sense_range_m > 0.0 &&
                   config.interference_range_m > 0.0,
               "ranges must be positive");
  COMIMO_CHECK(config.cw_min >= 1 && config.cw_max >= config.cw_min,
               "invalid contention window bounds");
}

SpatialCsmaStats SpatialCsmaSimulator::run(double duration_s) {
  COMIMO_CHECK(duration_s > 0.0, "duration must be positive");
  const auto total_slots = static_cast<std::uint64_t>(
      std::ceil(duration_s / config_.slot_time_s));
  const std::size_t n = stations_.size();

  std::vector<StationState> state(n);
  SpatialCsmaStats stats;
  for (std::size_t s = 0; s < n; ++s) {
    Rng rng(config_.seed, s);
    double t = 0.0;
    COMIMO_CHECK(stations_[s].arrival_rate_fps > 0.0,
                 "arrival rate must be positive");
    for (;;) {
      t += rng.exponential() / stations_[s].arrival_rate_fps;
      if (t >= duration_s) break;
      state[s].arrivals.push_back(t);
      ++stats.offered_frames;
    }
    state[s].cw = config_.cw_min;
  }
  Rng backoff_rng(config_.seed, 0xBACC0FFULL);

  // Static station grid (positions never move): the per-slot scans
  // become existence queries.  Cells sized to the dominant query radius.
  const bool use_grid = config_.index_mode == NetIndexMode::kGrid;
  SpatialGrid grid;
  if (use_grid) {
    std::vector<Vec2> positions(n);
    for (std::size_t s = 0; s < n; ++s) positions[s] = stations_[s].position;
    grid = SpatialGrid(positions,
                       std::max(config_.carrier_sense_range_m,
                                config_.interference_range_m));
  }
  const auto any_tx_within = [&](const Vec2& center, double range,
                                 std::size_t self) {
    return grid.any_within(center, range, [&](std::uint32_t o) {
      return static_cast<std::size_t>(o) != self && state[o].transmitting;
    });
  };

  const auto frame_slots = [&](std::size_t s) {
    const double airtime =
        static_cast<double>(stations_[s].frame_bits) / config_.bitrate_bps;
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::ceil(airtime /
                                                config_.slot_time_s)));
  };

  std::uint64_t delivered_bits = 0;
  std::uint64_t busy_slot_concurrency = 0;
  std::uint64_t busy_slots = 0;

  for (std::uint64_t slot = 0; slot < total_slots; ++slot) {
    const double now = static_cast<double>(slot) * config_.slot_time_s;

    // 1. Finish transmissions ending at this slot.
    for (std::size_t s = 0; s < n; ++s) {
      auto& st = state[s];
      if (!st.transmitting || st.tx_end_slot > slot) continue;
      st.transmitting = false;
      if (st.corrupted) {
        ++stats.lost_frames;
        ++st.retries;
        if (st.retries > config_.max_retries) {
          st.arrivals.pop_front();
          ++stats.dropped_frames;
          st.retries = 0;
          st.cw = config_.cw_min;
          st.contending = false;
        } else {
          st.cw = std::min(st.cw * 2, config_.cw_max);
          st.backoff = config_.difs_slots + backoff_rng.uniform_int(st.cw);
          st.contending = true;
        }
      } else {
        ++stats.delivered_frames;
        delivered_bits += stations_[s].frame_bits;
        st.arrivals.pop_front();
        st.retries = 0;
        st.cw = config_.cw_min;
        st.contending = false;
      }
    }

    // 2. Backoff countdown for stations that sense an idle medium.
    std::vector<std::size_t> starters;
    for (std::size_t s = 0; s < n; ++s) {
      auto& st = state[s];
      if (st.transmitting) continue;
      if (st.arrivals.empty() || st.arrivals.front() > now) continue;
      if (!st.contending) {
        st.contending = true;
        st.backoff = config_.difs_slots + backoff_rng.uniform_int(st.cw);
      }
      // Carrier sense: any active transmitter within cs range freezes
      // the countdown.
      bool medium_busy = false;
      if (use_grid) {
        medium_busy = any_tx_within(stations_[s].position,
                                    config_.carrier_sense_range_m, s);
      } else {
        for (std::size_t o = 0; o < n; ++o) {
          if (o == s || !state[o].transmitting) continue;
          if (distance(stations_[s].position, stations_[o].position) <=
              config_.carrier_sense_range_m) {
            medium_busy = true;
            break;
          }
        }
      }
      if (medium_busy) continue;
      if (st.backoff == 0) {
        starters.push_back(s);
      } else {
        --st.backoff;
      }
    }

    // 3. Start new transmissions.
    for (const std::size_t s : starters) {
      auto& st = state[s];
      st.transmitting = true;
      st.corrupted = false;
      st.tx_end_slot = slot + frame_slots(s);
    }

    // 4. Interference: any receiver with ≥1 foreign transmitter inside
    // interference range while its frame is on the air loses the frame.
    std::size_t active = 0;
    for (std::size_t s = 0; s < n; ++s) {
      if (state[s].transmitting) ++active;
    }
    if (active > 0) {
      ++busy_slots;
      busy_slot_concurrency += active;
      for (std::size_t s = 0; s < n; ++s) {
        if (!state[s].transmitting || state[s].corrupted) continue;
        if (use_grid) {
          if (any_tx_within(stations_[s].destination,
                            config_.interference_range_m, s)) {
            state[s].corrupted = true;
          }
          continue;
        }
        for (std::size_t o = 0; o < n; ++o) {
          if (o == s || !state[o].transmitting) continue;
          if (distance(stations_[s].destination,
                       stations_[o].position) <=
              config_.interference_range_m) {
            state[s].corrupted = true;
            break;
          }
        }
      }
    }
  }

  stats.throughput_bps = static_cast<double>(delivered_bits) / duration_s;
  stats.mean_concurrency =
      busy_slots ? static_cast<double>(busy_slot_concurrency) /
                       static_cast<double>(busy_slots)
                 : 0.0;
  return stats;
}

}  // namespace comimo
