// TDMA schedule for one cooperative hop (§2.2's three-step schemes).
//
// Materializes the MIMO/MISO/SIMO schemes into timed transmissions:
//   step 1 — the head broadcasts locally (one slot, mt > 1 only);
//   step 2 — the STBC long-haul block, all mt transmitters simultaneous;
//   step 3 — each non-head receiver forwards to the head in its own slot
//            (mr − 1 slots, mr > 1 only).
// Slot durations follow the variable-rate system (bits / (b·B)), with
// the long-haul slot stretched by the STBC rate (G3/G4 are rate ½).
#pragma once

#include <vector>

#include "comimo/net/node.h"
#include "comimo/phy/stbc.h"
#include "comimo/underlay/cooperative_hop.h"

namespace comimo {

struct ScheduledTransmission {
  enum class Step { kIntraSource, kLongHaul, kIntraSink };
  Step step = Step::kLongHaul;
  double start_s = 0.0;
  double duration_s = 0.0;
  std::vector<NodeId> transmitters;
  std::vector<NodeId> receivers;
  /// PA + circuit energy spent per *transmitting* node over this slot [J].
  double tx_energy_j = 0.0;
};

struct HopSchedule {
  std::vector<ScheduledTransmission> slots;
  double makespan_s = 0.0;
  /// Payload bits this schedule moves head-to-head.
  double payload_bits = 0.0;
  /// True when no two intra-cluster slots overlap and the long-haul slot
  /// does not overlap intra slots (the §2.2 sequencing).
  [[nodiscard]] bool is_sequential() const;
  /// Head-to-head goodput [bit/s]: payload over makespan.  The §2.3
  /// "bB bits per second" raw rate is paid once per step, so multi-step
  /// cooperative hops trade goodput for energy/diversity.
  [[nodiscard]] double goodput_bps() const {
    return makespan_s > 0.0 ? payload_bits / makespan_s : 0.0;
  }
};

class HopScheduler {
 public:
  /// Schedules `bits` of payload through the hop described by `plan`
  /// between the member lists of the two clusters (the first entry of
  /// each list is the head).
  [[nodiscard]] HopSchedule schedule(const UnderlayHopPlan& plan,
                                     const std::vector<NodeId>& tx_members,
                                     const std::vector<NodeId>& rx_members,
                                     double bits) const;
};

}  // namespace comimo
