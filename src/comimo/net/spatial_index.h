// Uniform spatial grid over 2-D positions — the index behind the
// million-node network layer.
//
// The grid buckets items into square cells of roughly the query radius
// (callers pass a hint tied to the d-clustering radius d/2 or the
// carrier-sense range), so a radius query touches O(1) cells and O(1)
// expected items at bounded density instead of scanning all n.
//
// Bit-identity contract: the cell walk is only a *conservative
// prefilter* — the cell range is padded by one cell on every side, so
// no item whose true distance is within the radius can be missed to
// floating-point rounding — and membership is always decided by the
// exact same `distance(center, item) <= radius` comparison the O(n²)
// reference loops use.  Candidate order is up to the caller (query()
// output is unordered; sort by your traversal order), which is how the
// clustering code reproduces the reference's ascending-index absorb
// order exactly.
//
// Items are keyed by a caller-chosen uint32 (node id, station index);
// keys are stable under removal — remove() tombstones the slot without
// moving survivors, so the index survives node deaths with O(cell)
// work and no rebuild.  Positions never move (nodes are static).
//
// Long-lived churn: tombstones alone would let continuous kill waves
// degrade the CSR scans (every query keeps stepping over dead slots)
// and grow the memory footprint unboundedly *relative to the live
// population* — a daemon running churn jobs for hours would drift past
// the ~2-cells/item cap measured against live items.  remove()
// therefore triggers compact() once dead slots outnumber live ones
// (beyond a small floor): the index rebuilds itself from the surviving
// items with the original cell hint, restoring both the slot density
// and the cells/live-item cap.  Compaction preserves every key and the
// exact-membership query contract, so query results are unchanged
// (queries are unordered by contract; membership is always the exact
// `distance <= radius` comparison).
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "comimo/common/geometry.h"

namespace comimo {

class SpatialGrid {
 public:
  static constexpr std::uint32_t kTombstone = ~std::uint32_t{0};

  SpatialGrid() = default;

  /// Builds the index over items[i] = (keys[i], positions[i]).  Keys
  /// must be unique and != kTombstone.  `cell_hint_m` is the intended
  /// cell edge (typically the dominant query radius); it is enlarged
  /// automatically when the bounding box would otherwise shatter into
  /// more than ~2 cells per item, keeping memory O(n).
  SpatialGrid(const std::vector<std::uint32_t>& keys,
              const std::vector<Vec2>& positions, double cell_hint_m);

  /// Convenience: keys 0..positions.size()-1.
  SpatialGrid(const std::vector<Vec2>& positions, double cell_hint_m);

  /// Calls f(key, position) for every live item with
  /// distance(center, position) <= radius.  Unordered.  If f returns
  /// bool and yields false the walk stops early (existence queries).
  template <typename F>
  void for_each_within(const Vec2& center, double radius, F&& f) const {
    if (slots_.empty()) return;
    std::uint32_t cx0 = 0, cx1 = 0, cy0 = 0, cy1 = 0;
    cell_range(center, radius, cx0, cx1, cy0, cy1);
    for (std::uint32_t cy = cy0; cy <= cy1; ++cy) {
      for (std::uint32_t cx = cx0; cx <= cx1; ++cx) {
        const std::size_t cell = static_cast<std::size_t>(cy) * nx_ + cx;
        const std::uint32_t end = cell_start_[cell + 1];
        for (std::uint32_t s = cell_start_[cell]; s < end; ++s) {
          const Slot& slot = slots_[s];
          if (slot.key == kTombstone) continue;
          if (distance(center, slot.position) <= radius) {
            if constexpr (std::is_invocable_r_v<bool, F, std::uint32_t,
                                                const Vec2&>) {
              if (!f(slot.key, slot.position)) return;
            } else {
              f(slot.key, slot.position);
            }
          }
        }
      }
    }
  }

  /// Appends the keys of all live items within `radius` of `center`
  /// (unordered; the caller sorts into its traversal order).
  void query(const Vec2& center, double radius,
             std::vector<std::uint32_t>& out) const;

  /// True when any live item within `radius` of `center` satisfies
  /// pred(key) — the carrier-sense / interference existence test.
  template <typename Pred>
  [[nodiscard]] bool any_within(const Vec2& center, double radius,
                                Pred&& pred) const {
    bool found = false;
    for_each_within(center, radius,
                    [&](std::uint32_t key, const Vec2&) -> bool {
                      if (pred(key)) {
                        found = true;
                        return false;
                      }
                      return true;
                    });
    return found;
  }

  /// Tombstones the item with this key at this position (the position
  /// locates the cell; it must be the position the item was built
  /// with).  No-op when the key is absent (already removed).  May
  /// trigger compact() once tombstones outnumber live items (see the
  /// file comment); keys and query results are preserved either way.
  void remove(std::uint32_t key, const Vec2& position);

  /// Rebuilds the index from the live items only, dropping every
  /// tombstone and re-deriving the cell geometry from the surviving
  /// bounding box with the original cell hint.  Keys are preserved;
  /// query results are set-identical (exact-membership contract).
  /// Called automatically by remove() past the tombstone threshold;
  /// public so churn-heavy owners can compact at a quiescent point.
  void compact();

  [[nodiscard]] std::size_t live_items() const noexcept { return live_; }
  /// Tombstoned slots currently retained (0 right after compaction).
  [[nodiscard]] std::size_t dead_items() const noexcept { return dead_; }
  [[nodiscard]] std::size_t num_cells() const noexcept {
    return static_cast<std::size_t>(nx_) * ny_;
  }
  [[nodiscard]] double cell_size_m() const noexcept { return cell_m_; }

  /// Heap footprint of the index (bytes) — the bench's bytes/node
  /// accounting.
  [[nodiscard]] std::size_t bytes() const noexcept;

 private:
  struct Slot {
    std::uint32_t key = kTombstone;
    Vec2 position;
  };

  [[nodiscard]] std::size_t cell_of(const Vec2& p) const noexcept;
  void cell_range(const Vec2& center, double radius, std::uint32_t& cx0,
                  std::uint32_t& cx1, std::uint32_t& cy0,
                  std::uint32_t& cy1) const noexcept;

  double cell_m_ = 1.0;
  double cell_hint_m_ = 1.0;  ///< caller's hint, reused by compact()
  double min_x_ = 0.0;
  double min_y_ = 0.0;
  std::uint32_t nx_ = 0;
  std::uint32_t ny_ = 0;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;
  std::vector<std::uint32_t> cell_start_;  ///< CSR offsets, size nx*ny+1
  std::vector<Slot> slots_;                ///< cell-grouped items
};

}  // namespace comimo
