#include "comimo/net/csma_ca.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {

namespace {
struct StationState {
  std::deque<double> arrivals;  // pending frame arrival times
  std::uint64_t backoff = 0;    // remaining idle slots
  unsigned cw = 0;
  unsigned retries = 0;
  bool contending = false;
};
}  // namespace

CsmaCaSimulator::CsmaCaSimulator(CsmaCaConfig config,
                                 std::vector<CsmaStation> stations)
    : config_(config), stations_(std::move(stations)) {
  COMIMO_CHECK(!stations_.empty(), "simulator needs at least one station");
  COMIMO_CHECK(config.slot_time_s > 0.0 && config.bitrate_bps > 0.0,
               "invalid timing parameters");
  COMIMO_CHECK(config.cw_min >= 1 && config.cw_max >= config.cw_min,
               "invalid contention window bounds");
}

CsmaCaStats CsmaCaSimulator::run(double duration_s) {
  COMIMO_CHECK(duration_s > 0.0, "duration must be positive");
  const auto total_slots = static_cast<std::uint64_t>(
      std::ceil(duration_s / config_.slot_time_s));

  // Pre-generate Poisson arrivals per station (deterministic streams).
  std::vector<StationState> state(stations_.size());
  CsmaCaStats stats;
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    Rng rng(config_.seed, s);
    double t = 0.0;
    const double rate = stations_[s].arrival_rate_fps;
    COMIMO_CHECK(rate > 0.0, "arrival rate must be positive");
    for (;;) {
      t += rng.exponential() / rate;
      if (t >= duration_s) break;
      state[s].arrivals.push_back(t);
      ++stats.offered_frames;
    }
    state[s].cw = config_.cw_min;
  }

  Rng backoff_rng(config_.seed, 0xBACC0FFULL);
  std::uint64_t busy_slots = 0;
  double delay_sum = 0.0;
  std::uint64_t slot = 0;
  std::uint64_t delivered_bits = 0;

  const auto frame_slots = [&](std::size_t s) {
    const double airtime =
        static_cast<double>(stations_[s].frame_bits) / config_.bitrate_bps;
    return static_cast<std::uint64_t>(
        std::ceil(airtime / config_.slot_time_s));
  };

  while (slot < total_slots) {
    const double now = static_cast<double>(slot) * config_.slot_time_s;
    // Stations whose head-of-line frame has arrived start contending.
    std::vector<std::size_t> ready;
    for (std::size_t s = 0; s < stations_.size(); ++s) {
      auto& st = state[s];
      if (st.arrivals.empty() || st.arrivals.front() > now) continue;
      if (!st.contending) {
        st.contending = true;
        st.backoff = config_.difs_slots +
                     backoff_rng.uniform_int(st.cw);
      }
      if (st.backoff == 0) {
        ready.push_back(s);
      } else {
        --st.backoff;
      }
    }

    if (ready.empty()) {
      ++slot;
      continue;
    }

    if (ready.size() == 1) {
      const std::size_t s = ready.front();
      auto& st = state[s];
      const std::uint64_t dur = frame_slots(s);
      const double finish =
          static_cast<double>(slot + dur) * config_.slot_time_s;
      delay_sum += finish - st.arrivals.front();
      st.arrivals.pop_front();
      delivered_bits += stations_[s].frame_bits;
      ++stats.delivered_frames;
      st.contending = false;
      st.cw = config_.cw_min;
      st.retries = 0;
      // Busy accounting stops at the simulation horizon.
      busy_slots += std::min(dur, total_slots - slot);
      slot += dur + 1;
    } else {
      // Collision: all transmitters lose the slot(s) and back off with a
      // doubled window; the medium is busy for the longest frame.
      ++stats.collisions;
      std::uint64_t dur = 0;
      for (const std::size_t s : ready) {
        auto& st = state[s];
        dur = std::max(dur, frame_slots(s));
        ++st.retries;
        if (st.retries > config_.max_retries) {
          st.arrivals.pop_front();
          ++stats.dropped_frames;
          st.contending = false;
          st.cw = config_.cw_min;
          st.retries = 0;
        } else {
          st.cw = std::min(st.cw * 2, config_.cw_max);
          st.backoff = config_.difs_slots +
                       backoff_rng.uniform_int(st.cw);
        }
      }
      busy_slots += std::min(dur, total_slots - slot);
      slot += dur + 1;
    }
  }

  stats.mean_access_delay_s =
      stats.delivered_frames
          ? delay_sum / static_cast<double>(stats.delivered_frames)
          : 0.0;
  stats.throughput_bps = static_cast<double>(delivered_bits) / duration_s;
  stats.channel_busy_fraction =
      static_cast<double>(busy_slots) / static_cast<double>(total_slots);
  return stats;
}

}  // namespace comimo
