#include "comimo/obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <vector>

#include "comimo/common/error.h"

namespace comimo::obs {

namespace {

struct TraceEvent {
  const char* name;
  std::uint32_t tid;
  std::int64_t t0_ns;
  std::int64_t dur_ns;
};

/// One buffer per writing thread, owned jointly by the thread (for
/// lock-cheap appends) and the global list (so events survive thread
/// exit until the flush).
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct TraceState {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::uint32_t next_tid = 1;
  std::int64_t epoch_ns = 0;
  std::string atexit_path;
  bool atexit_registered = false;
};

TraceState& state() {
  static TraceState s;
  return s;
}

std::atomic<bool> g_tracing{false};

TraceBuffer& local_buffer() {
  thread_local std::shared_ptr<TraceBuffer> buf = [] {
    auto b = std::make_shared<TraceBuffer>();
    TraceState& s = state();
    const std::lock_guard<std::mutex> lock(s.mu);
    b->tid = s.next_tid++;
    s.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

void atexit_flush() {
  TraceState& s = state();
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    path = s.atexit_path;
  }
  if (!path.empty()) write_trace_file(path);
}

}  // namespace

bool tracing_enabled() noexcept {
#ifdef COMIMO_OBS_DISABLED
  return false;
#else
  return g_tracing.load(std::memory_order_relaxed);
#endif
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void start_trace(const std::string& path) {
  clear_trace();
  TraceState& s = state();
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    s.epoch_ns = now_ns();
    s.atexit_path = path;
    if (!path.empty() && !s.atexit_registered) {
      std::atexit(atexit_flush);
      s.atexit_registered = true;
    }
  }
  // Inert when compiled out: tracing_enabled() stays false, so the
  // armed flag and atexit hook never observe an event.
  set_enabled(true);
  g_tracing.store(true, std::memory_order_relaxed);
}

void stop_trace() noexcept {
  g_tracing.store(false, std::memory_order_relaxed);
}

void record_span(const char* name, std::int64_t t0_ns,
                 std::int64_t dur_ns) noexcept {
  if (!tracing_enabled() || name == nullptr) return;
  TraceBuffer& buf = local_buffer();
  const std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back({name, buf.tid, t0_ns, dur_ns});
}

void write_trace(std::ostream& os) {
  TraceState& s = state();
  std::vector<std::shared_ptr<TraceBuffer>> buffers;
  std::int64_t epoch_ns = 0;
  {
    const std::lock_guard<std::mutex> lock(s.mu);
    buffers = s.buffers;
    epoch_ns = s.epoch_ns;
  }
  const std::ios_base::fmtflags flags = os.flags();
  const std::streamsize precision = os.precision();
  os << std::fixed << std::setprecision(3);
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& buf : buffers) {
    const std::lock_guard<std::mutex> lock(buf->mu);
    for (const TraceEvent& e : buf->events) {
      if (!first) os << ",";
      first = false;
      // Chrome trace-event complete spans; ts/dur in microseconds.
      os << "\n{\"name\":\"" << e.name << "\",\"ph\":\"X\",\"pid\":1,\"tid\":"
         << e.tid << ",\"ts\":"
         << static_cast<double>(e.t0_ns - epoch_ns) / 1000.0 << ",\"dur\":"
         << static_cast<double>(e.dur_ns) / 1000.0 << "}";
    }
  }
  os << "\n]}\n";
  os.flags(flags);
  os.precision(precision);
}

void write_trace_file(const std::string& path) {
  std::ofstream os(path);
  COMIMO_CHECK(os.good(), "cannot open trace output path: " + path);
  write_trace(os);
}

void clear_trace() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  for (const auto& buf : s.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
}

std::size_t trace_event_count() {
  TraceState& s = state();
  const std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (const auto& buf : s.buffers) {
    const std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

}  // namespace comimo::obs
