// Metric export: the registry's merged state as a bench-JSON object.
//
// BenchReporter embeds metrics_to_json(global(), kDeterministic) under
// the envelope's top-level "metrics" key and the kRuntime domain under
// "metrics_runtime" whenever the obs layer is enabled.  The
// deterministic block is part of the thread-count-invariance contract:
// scripts/check_bench_json.sh diffs it byte-for-byte between a serial
// and a parallel run of the same bench.
#pragma once

#include "comimo/obs/metrics.h"

namespace comimo {
class Json;
}  // namespace comimo

namespace comimo::obs {

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count,
/// mean, stddev, min, max}}} for the requested domain, keys sorted by
/// name.  Histogram moments come from the chunk-ordered shard merge,
/// so the dump is identical for any worker count (deterministic domain).
[[nodiscard]] Json metrics_to_json(const MetricRegistry& registry,
                                   Domain domain);

}  // namespace comimo::obs
