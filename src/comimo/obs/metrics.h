// Low-overhead observability: named counters, gauges, and histograms.
//
// The paper's evaluation hinges on per-stage quantities the simulator
// computes but never surfaced — per-hop BER and retry counts, PA-energy
// headroom against the primary-receiver noise floor, preemption stalls.
// This registry makes them first-class without disturbing the hot-path
// contracts established by the mc/ engine and the link workspace:
//
//   * disabled at runtime (the default), every hot-path call is one
//     relaxed atomic load and a branch — ≤1% on bench/perf_kernels and
//     zero heap allocations in the steady state (the PR-3 invariant);
//   * compiled out (-DCOMIMO_OBS=OFF defines COMIMO_OBS_DISABLED),
//     every call body is empty and the optimizer deletes it;
//   * enabled, aggregates stay deterministic: counter adds and gauge
//     min/max folds are commutative, and histogram observations land
//     in per-chunk shards merged in ascending chunk order — the same
//     discipline as McAccumulator — so a 1-thread and an N-thread run
//     of the same seed export identical deterministic metrics.
//
// Every metric carries a Domain tag.  kDeterministic quantities are
// pure functions of (seed, config) and embed in bench JSON under the
// top-level "metrics" key (diffed by scripts/check_bench_json.sh across
// worker counts); kRuntime quantities (latencies, queue depths,
// utilization) vary run to run and export under "metrics_runtime",
// which determinism diffs ignore.
//
// Handle discipline: registration (MetricRegistry::counter et al.) may
// allocate and lock; it belongs in cold paths (construction, static
// locals).  The returned handles are trivially copyable and their
// record calls never allocate.
//
// Observation discipline for kDeterministic histograms: observe them
// serially or from directly inside a top-level run_trials trial (the
// engine's chunk shard keeps them ordered).  Do NOT observe them from
// a *nested* engine run (e.g. a sweep launched inside another sweep's
// trial) — nested chunk ordinals reuse the outer ordinal space and the
// fold placement would depend on the worker count.  Counters and gauge
// min/max folds are commutative and safe from any context.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "comimo/numeric/stats.h"

namespace comimo::obs {

/// Export domain of a metric (see file comment).
enum class Domain { kDeterministic, kRuntime };

namespace detail {

extern std::atomic<bool> g_enabled;

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  mutable std::mutex mu;
  double value = 0.0;
  bool has_value = false;
};

}  // namespace detail

/// Global runtime switch.  Off by default; `--obs` / `--trace` on the
/// bench CLI turn it on.  Compiled out, it is a constant false.
[[nodiscard]] inline bool enabled() noexcept {
#ifdef COMIMO_OBS_DISABLED
  return false;
#else
  return detail::g_enabled.load(std::memory_order_relaxed);
#endif
}

void set_enabled(bool on) noexcept;

/// Monotonically increasing named count.  Adds are relaxed atomic
/// fetch-adds: commutative, so totals are exact and identical for any
/// worker count.
class Counter {
 public:
  Counter() = default;

  void add(std::uint64_t n = 1) const noexcept {
#ifdef COMIMO_OBS_DISABLED
    (void)n;
#else
    if (cell_ != nullptr && enabled()) {
      cell_->value.fetch_add(n, std::memory_order_relaxed);
    }
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
#ifdef COMIMO_OBS_DISABLED
    return 0;
#else
    return cell_ ? cell_->value.load(std::memory_order_relaxed) : 0;
#endif
  }

 private:
  friend class MetricRegistry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-value / extremum gauge.  set() is for serial contexts (configs,
/// end-of-run summaries); fold_min()/fold_max() are commutative and
/// safe — and deterministic — from concurrent workers.
class Gauge {
 public:
  Gauge() = default;

  void set(double x) const noexcept;
  void fold_min(double x) const noexcept;
  void fold_max(double x) const noexcept;

 private:
  friend class MetricRegistry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

class MetricRegistry;

/// RunningStats-backed distribution.  Observations made inside an
/// ObsShard scope accumulate into that shard; shards merge in ascending
/// ordinal order (chunk order under the MC engine), so the merged
/// moments are bit-identical for any worker count.  Observations made
/// outside any shard fold into a mutex-protected default shard, merged
/// last — deterministic as long as those call sites are serial.
class Histogram {
 public:
  Histogram() = default;

  void observe(double x) const noexcept;

  /// True when the handle is bound to a registry (default-constructed
  /// handles are inert).
  [[nodiscard]] bool attached() const noexcept { return registry_ != nullptr; }

 private:
  friend class MetricRegistry;
  Histogram(MetricRegistry* registry, std::size_t index)
      : registry_(registry), index_(index) {}
  MetricRegistry* registry_ = nullptr;
  std::size_t index_ = 0;
};

/// Name → metric registry.  Registration is idempotent (same name,
/// same kind → same handle); handles stay valid for the registry's
/// lifetime, across reset().  One process-wide instance backs the
/// library wiring; tests may construct private registries.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& global();

  [[nodiscard]] Counter counter(const std::string& name,
                                Domain domain = Domain::kDeterministic);
  [[nodiscard]] Gauge gauge(const std::string& name,
                            Domain domain = Domain::kDeterministic);
  [[nodiscard]] Histogram histogram(const std::string& name,
                                    Domain domain = Domain::kDeterministic);

  struct CounterSnapshot {
    std::string name;
    Domain domain = Domain::kDeterministic;
    std::uint64_t value = 0;
  };
  struct GaugeSnapshot {
    std::string name;
    Domain domain = Domain::kDeterministic;
    double value = 0.0;
  };
  struct HistogramSnapshot {
    std::string name;
    Domain domain = Domain::kDeterministic;
    RunningStats stats;
  };

  /// Sorted by name (registration order may depend on scheduling).
  [[nodiscard]] std::vector<CounterSnapshot> counters() const;
  /// Gauges that were never set are omitted.  Sorted by name.
  [[nodiscard]] std::vector<GaugeSnapshot> gauges() const;
  /// Chunk-ordered merge of all shards (see Histogram).  Sorted by name.
  [[nodiscard]] std::vector<HistogramSnapshot> histograms() const;

  /// Zeroes every value and drops every shard; registrations — and all
  /// outstanding handles — stay valid.
  void reset();

  /// RAII fork serializer.  While alive, the constructing thread holds
  /// the registry mutex and every gauge-cell mutex, so a process forked
  /// under it cannot inherit any of them mid-operation (a mutex locked
  /// by some *other* live thread at fork() stays locked forever in the
  /// child — the child would deadlock on its first gauge set or
  /// histogram fold).  Hold-and-fork discipline: construct the guard,
  /// fork, then in the parent let the destructor unlock; in the child
  /// (a single-threaded copy of the constructing thread) call
  /// unlock_in_child() before touching the registry.
  class ForkGuard {
   public:
    explicit ForkGuard(MetricRegistry& registry);
    ~ForkGuard();
    ForkGuard(const ForkGuard&) = delete;
    ForkGuard& operator=(const ForkGuard&) = delete;

    /// Releases the inherited locks in a forked child.  Legal because
    /// the child's only thread is the copy of the thread that took
    /// them; after this the child may use the registry freely.
    void unlock_in_child() noexcept;

   private:
    void unlock_all() noexcept;
    MetricRegistry* registry_ = nullptr;
    std::size_t gauges_locked_ = 0;
    bool released_ = false;
  };

 private:
  friend class Histogram;
  friend class ObsShard;

  void observe_default(std::size_t index, double x) noexcept;
  void fold_shard(std::uint64_t ordinal, std::vector<RunningStats>&& stats);

  mutable std::mutex mu_;
  std::map<std::string, std::size_t> counter_index_;
  std::deque<detail::CounterCell> counter_cells_;
  std::vector<Domain> counter_domains_;
  std::map<std::string, std::size_t> gauge_index_;
  std::deque<detail::GaugeCell> gauge_cells_;
  std::vector<Domain> gauge_domains_;
  std::map<std::string, std::size_t> histogram_index_;
  std::vector<Domain> histogram_domains_;
  std::vector<RunningStats> default_shard_;
  std::map<std::uint64_t, std::vector<RunningStats>> shards_;
};

/// RAII shard scope for deterministic histogram aggregation: while
/// alive on a thread, that thread's Histogram::observe calls accumulate
/// into a local frame; destruction folds the frame into the registry
/// under the scope's ordinal.  The MC engine opens one per chunk with
/// ordinal = chunk index — user trial code gets chunk-ordered metrics
/// for free.  Scopes nest (inner shadows outer, restored on exit).
class ObsShard {
 public:
  explicit ObsShard(std::uint64_t ordinal,
                    MetricRegistry& registry = MetricRegistry::global());
  ~ObsShard();
  ObsShard(const ObsShard&) = delete;
  ObsShard& operator=(const ObsShard&) = delete;

 private:
  friend class Histogram;
  struct Frame {
    MetricRegistry* registry = nullptr;
    std::uint64_t ordinal = 0;
    std::vector<RunningStats> stats;
    Frame* prev = nullptr;
  };
  static Frame*& current() noexcept;
  Frame frame_;
  bool active_ = false;
};

}  // namespace comimo::obs
