#include "comimo/obs/metrics.h"

#include <algorithm>

namespace comimo::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) noexcept {
#ifdef COMIMO_OBS_DISABLED
  (void)on;
#else
  detail::g_enabled.store(on, std::memory_order_relaxed);
#endif
}

void Gauge::set(double x) const noexcept {
#ifdef COMIMO_OBS_DISABLED
  (void)x;
#else
  if (cell_ == nullptr || !enabled()) return;
  const std::lock_guard<std::mutex> lock(cell_->mu);
  cell_->value = x;
  cell_->has_value = true;
#endif
}

void Gauge::fold_min(double x) const noexcept {
#ifdef COMIMO_OBS_DISABLED
  (void)x;
#else
  if (cell_ == nullptr || !enabled()) return;
  const std::lock_guard<std::mutex> lock(cell_->mu);
  cell_->value = cell_->has_value ? std::min(cell_->value, x) : x;
  cell_->has_value = true;
#endif
}

void Gauge::fold_max(double x) const noexcept {
#ifdef COMIMO_OBS_DISABLED
  (void)x;
#else
  if (cell_ == nullptr || !enabled()) return;
  const std::lock_guard<std::mutex> lock(cell_->mu);
  cell_->value = cell_->has_value ? std::max(cell_->value, x) : x;
  cell_->has_value = true;
#endif
}

void Histogram::observe(double x) const noexcept {
#ifdef COMIMO_OBS_DISABLED
  (void)x;
#else
  if (registry_ == nullptr || !enabled()) return;
  ObsShard::Frame* frame = ObsShard::current();
  if (frame != nullptr && frame->registry == registry_) {
    if (index_ >= frame->stats.size()) frame->stats.resize(index_ + 1);
    frame->stats[index_].add(x);
    return;
  }
  registry_->observe_default(index_, x);
#endif
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

Counter MetricRegistry::counter(const std::string& name, Domain domain) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return Counter(&counter_cells_[it->second]);
  const std::size_t index = counter_cells_.size();
  counter_cells_.emplace_back();
  counter_domains_.push_back(domain);
  counter_index_.emplace(name, index);
  return Counter(&counter_cells_[index]);
}

Gauge MetricRegistry::gauge(const std::string& name, Domain domain) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return Gauge(&gauge_cells_[it->second]);
  const std::size_t index = gauge_cells_.size();
  gauge_cells_.emplace_back();
  gauge_domains_.push_back(domain);
  gauge_index_.emplace(name, index);
  return Gauge(&gauge_cells_[index]);
}

Histogram MetricRegistry::histogram(const std::string& name, Domain domain) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return Histogram(this, it->second);
  const std::size_t index = histogram_domains_.size();
  histogram_domains_.push_back(domain);
  histogram_index_.emplace(name, index);
  return Histogram(this, index);
}

std::vector<MetricRegistry::CounterSnapshot> MetricRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSnapshot> out;
  out.reserve(counter_index_.size());
  for (const auto& [name, index] : counter_index_) {
    out.push_back({name, counter_domains_[index],
                   counter_cells_[index].value.load(
                       std::memory_order_relaxed)});
  }
  return out;
}

std::vector<MetricRegistry::GaugeSnapshot> MetricRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<GaugeSnapshot> out;
  for (const auto& [name, index] : gauge_index_) {
    const detail::GaugeCell& cell = gauge_cells_[index];
    const std::lock_guard<std::mutex> cell_lock(cell.mu);
    if (!cell.has_value) continue;
    out.push_back({name, gauge_domains_[index], cell.value});
  }
  return out;
}

std::vector<MetricRegistry::HistogramSnapshot> MetricRegistry::histograms()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  // Chunk-ordered reduction: shards ascending by ordinal, then the
  // default shard last — a fixed order, so the merged moments are a
  // pure function of the per-shard content.
  std::vector<RunningStats> merged(histogram_domains_.size());
  for (const auto& [ordinal, stats] : shards_) {
    for (std::size_t i = 0; i < stats.size() && i < merged.size(); ++i) {
      merged[i].merge(stats[i]);
    }
  }
  for (std::size_t i = 0;
       i < default_shard_.size() && i < merged.size(); ++i) {
    merged[i].merge(default_shard_[i]);
  }
  std::vector<HistogramSnapshot> out;
  for (const auto& [name, index] : histogram_index_) {
    if (merged[index].count() == 0) continue;
    out.push_back({name, histogram_domains_[index], merged[index]});
  }
  return out;
}

void MetricRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& cell : counter_cells_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
  for (auto& cell : gauge_cells_) {
    const std::lock_guard<std::mutex> cell_lock(cell.mu);
    cell.value = 0.0;
    cell.has_value = false;
  }
  default_shard_.clear();
  shards_.clear();
}

void MetricRegistry::observe_default(std::size_t index, double x) noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  if (index >= default_shard_.size()) default_shard_.resize(index + 1);
  default_shard_[index].add(x);
}

void MetricRegistry::fold_shard(std::uint64_t ordinal,
                                std::vector<RunningStats>&& stats) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = shards_[ordinal];
  if (slot.empty()) {
    slot = std::move(stats);
    return;
  }
  if (slot.size() < stats.size()) slot.resize(stats.size());
  for (std::size_t i = 0; i < stats.size(); ++i) slot[i].merge(stats[i]);
}

MetricRegistry::ForkGuard::ForkGuard(MetricRegistry& registry)
    : registry_(&registry) {
  // Registry mutex first, then every gauge cell in index order — a
  // fixed acquisition order, and the only place both are held at once,
  // so it cannot deadlock against normal metric traffic (which takes
  // at most one of them at a time; gauges() takes mu_ then one cell,
  // the same order as here).
  registry_->mu_.lock();
  for (auto& cell : registry_->gauge_cells_) {
    cell.mu.lock();
    ++gauges_locked_;
  }
}

void MetricRegistry::ForkGuard::unlock_all() noexcept {
  if (released_) return;
  released_ = true;
  // Reverse order of acquisition.
  for (std::size_t i = gauges_locked_; i > 0; --i) {
    registry_->gauge_cells_[i - 1].mu.unlock();
  }
  registry_->mu_.unlock();
}

void MetricRegistry::ForkGuard::unlock_in_child() noexcept { unlock_all(); }

MetricRegistry::ForkGuard::~ForkGuard() { unlock_all(); }

ObsShard::Frame*& ObsShard::current() noexcept {
  thread_local Frame* frame = nullptr;
  return frame;
}

ObsShard::ObsShard(std::uint64_t ordinal, MetricRegistry& registry) {
  if (!enabled()) return;
  frame_.registry = &registry;
  frame_.ordinal = ordinal;
  frame_.prev = current();
  current() = &frame_;
  active_ = true;
}

ObsShard::~ObsShard() {
  if (!active_) return;
  current() = frame_.prev;
  if (frame_.registry != nullptr && !frame_.stats.empty()) {
    frame_.registry->fold_shard(frame_.ordinal, std::move(frame_.stats));
  }
}

}  // namespace comimo::obs
