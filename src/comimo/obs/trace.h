// Span tracing: RAII scopes exported as a chrome://tracing / Perfetto
// loadable JSON dump.
//
// A SpanTimer brackets a region of interest; when tracing is active its
// (name, thread, start, duration) is appended to a thread-local buffer,
// and when a histogram handle is attached the duration in seconds is
// observed there as well.  Inactive (the default), construction and
// destruction are one relaxed load and a branch each — no clock reads,
// no allocation.
//
// start_trace(path) enables the observability layer, arms tracing, and
// registers an atexit flush, so `--trace out.json` works on every bench
// binary without per-binary wiring (parse_bench_cli calls it).  The
// dump is the Chrome trace-event format: an object with a traceEvents
// array of complete ("ph":"X") events, timestamps in microseconds since
// the trace epoch — load it at chrome://tracing or ui.perfetto.dev.
//
// Span names must outlive the flush; pass string literals or strings
// with static storage duration.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "comimo/obs/metrics.h"

namespace comimo::obs {

[[nodiscard]] bool tracing_enabled() noexcept;

/// Arms tracing (and enables the obs layer), clearing any prior
/// events.  With a non-empty path, an atexit hook writes the dump
/// there; write_trace_file can also be called explicitly at any point.
void start_trace(const std::string& path);

/// Disarms tracing; buffered events stay until clear_trace().
void stop_trace() noexcept;

/// Appends one complete span; timestamps are steady_clock nanoseconds.
void record_span(const char* name, std::int64_t t0_ns,
                 std::int64_t dur_ns) noexcept;

/// Writes the Chrome trace-event JSON for everything recorded so far.
void write_trace(std::ostream& os);
void write_trace_file(const std::string& path);

/// Drops all buffered events (tests, repeated captures).
void clear_trace();

/// Number of buffered events across all threads (tests).
[[nodiscard]] std::size_t trace_event_count();

/// Steady-clock nanoseconds (the span/trace time base).
[[nodiscard]] std::int64_t now_ns() noexcept;

/// RAII span: times the enclosing scope into the trace buffer and an
/// optional histogram (seconds).  Does nothing — not even a clock read
/// — unless the obs layer is enabled and at least one sink is live.
class SpanTimer {
 public:
  explicit SpanTimer(const char* name) noexcept : SpanTimer(name, Histogram{}) {}

  SpanTimer(const char* name, Histogram hist) noexcept {
#ifndef COMIMO_OBS_DISABLED
    if (!enabled()) return;
    trace_ = tracing_enabled();
    if (!trace_ && !hist.attached()) return;  // no sink: skip the clock
    name_ = name;
    hist_ = hist;
    timed_ = true;
    t0_ns_ = now_ns();
#else
    (void)name;
    (void)hist;
#endif
  }

  ~SpanTimer() {
#ifndef COMIMO_OBS_DISABLED
    if (!timed_) return;
    const std::int64_t dur_ns = now_ns() - t0_ns_;
    hist_.observe(static_cast<double>(dur_ns) * 1e-9);
    if (trace_) record_span(name_, t0_ns_, dur_ns);
#endif
  }

  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
#ifndef COMIMO_OBS_DISABLED
  const char* name_ = nullptr;
  Histogram hist_;
  std::int64_t t0_ns_ = 0;
  bool trace_ = false;
  bool timed_ = false;
#endif
};

}  // namespace comimo::obs
