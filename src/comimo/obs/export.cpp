#include "comimo/obs/export.h"

#include "comimo/common/bench_json.h"

namespace comimo::obs {

Json metrics_to_json(const MetricRegistry& registry, Domain domain) {
  Json counters = Json::object();
  for (const auto& c : registry.counters()) {
    if (c.domain != domain) continue;
    counters.set(c.name, c.value);
  }
  Json gauges = Json::object();
  for (const auto& g : registry.gauges()) {
    if (g.domain != domain) continue;
    gauges.set(g.name, g.value);
  }
  Json histograms = Json::object();
  for (const auto& h : registry.histograms()) {
    if (h.domain != domain) continue;
    Json stats = Json::object();
    stats.set("count", static_cast<std::uint64_t>(h.stats.count()));
    stats.set("mean", h.stats.mean());
    stats.set("stddev", h.stats.stddev());
    stats.set("min", h.stats.min());
    stats.set("max", h.stats.max());
    histograms.set(h.name, std::move(stats));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

}  // namespace comimo::obs
