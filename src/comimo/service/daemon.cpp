#include "comimo/service/daemon.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/obs/export.h"
#include "comimo/obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#define COMIMO_HAS_SOCKETS 1
#include <sys/socket.h>
#include <unistd.h>
#else
#define COMIMO_HAS_SOCKETS 0
#endif

namespace comimo::service {

namespace {

void shutdown_fd(int fd) noexcept {
#if COMIMO_HAS_SOCKETS
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
#else
  (void)fd;
#endif
}

void accept_unblock(int fd) noexcept { shutdown_fd(fd); }

int accept_fd(int listen_fd) noexcept {
#if COMIMO_HAS_SOCKETS
  return ::accept(listen_fd, nullptr, nullptr);
#else
  (void)listen_fd;
  return -1;
#endif
}

void unlink_path(const std::string& path) noexcept {
#if COMIMO_HAS_SOCKETS
  ::unlink(path.c_str());
#else
  (void)path;
#endif
}

// Service liveness metrics — runtime domain by definition (they depend
// on client behavior and wall time), so determinism diffs ignore them.
struct ServiceMetrics {
  obs::Counter accepted;
  obs::Counter rejected;
  obs::Counter completed;
  obs::Counter failed;
  obs::Gauge p50_ms;
  obs::Gauge p99_ms;
  obs::Gauge queue_depth;

  static ServiceMetrics& get() {
    static ServiceMetrics m{
        obs::MetricRegistry::global().counter("service.jobs_accepted",
                                              obs::Domain::kRuntime),
        obs::MetricRegistry::global().counter("service.jobs_rejected",
                                              obs::Domain::kRuntime),
        obs::MetricRegistry::global().counter("service.jobs_completed",
                                              obs::Domain::kRuntime),
        obs::MetricRegistry::global().counter("service.jobs_failed",
                                              obs::Domain::kRuntime),
        obs::MetricRegistry::global().gauge("service.job_latency_p50_ms",
                                            obs::Domain::kRuntime),
        obs::MetricRegistry::global().gauge("service.job_latency_p99_ms",
                                            obs::Domain::kRuntime),
        obs::MetricRegistry::global().gauge("service.queue_depth",
                                            obs::Domain::kRuntime)};
    return m;
  }
};

/// Nearest-rank percentile of an unsorted copy; q in [0, 1].
double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[rank == 0 ? 0 : rank - 1];
}

std::uint64_t parse_u64_field(const std::map<std::string, std::string>& kv,
                              const std::string& key, std::uint64_t fallback) {
  const auto it = kv.find(key);
  if (it == kv.end()) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw InvalidArgument("service: field " + key +
                          " is not an integer: " + it->second);
  }
  return static_cast<std::uint64_t>(v);
}

std::string metrics_dump_payload() {
  Json out = Json::object();
  out.set("metrics", obs::metrics_to_json(obs::MetricRegistry::global(),
                                          obs::Domain::kDeterministic));
  out.set("metrics_runtime",
          obs::metrics_to_json(obs::MetricRegistry::global(),
                               obs::Domain::kRuntime));
  return out.dump_string(2);
}

}  // namespace

/// One client connection.  The reader and writer threads share only the
/// reply deque; `finished` flips when the writer (always the last of
/// the two to make progress) exits, which is what lets the accept loop
/// reap the session without blocking on a live one.
struct ServiceDaemon::Session {
  int fd = -1;
  std::uint64_t session_seed = 0;

  struct ReplySlot {
    bool immediate = false;
    JobOutcome outcome;               ///< valid when immediate
    std::future<JobOutcome> future;   ///< valid otherwise
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<ReplySlot> replies;
  bool reader_done = false;
  std::atomic<bool> finished{false};

  std::thread reader;
  std::thread writer;

  void push_immediate(FrameType type, std::string payload) {
    ReplySlot slot;
    slot.immediate = true;
    slot.outcome = JobOutcome{type, std::move(payload)};
    {
      const std::lock_guard<std::mutex> lock(mu);
      replies.push_back(std::move(slot));
    }
    cv.notify_one();
  }

  void push_future(std::future<JobOutcome> future) {
    ReplySlot slot;
    slot.future = std::move(future);
    {
      const std::lock_guard<std::mutex> lock(mu);
      replies.push_back(std::move(slot));
    }
    cv.notify_one();
  }
};

ServiceDaemon::ServiceDaemon(ServiceConfig config)
    : config_(std::move(config)),
      queue_(std::max<std::size_t>(1, config_.queue_capacity)),
      runtime_(config_.ebbar_spec, config_.table_cache_dir) {
  if (config_.socket_path.empty()) {
    throw InvalidArgument("service: socket_path must be set");
  }
  config_.service_workers = std::max(1u, config_.service_workers);
  config_.mc_threads = std::max(1u, config_.mc_threads);
  config_.latency_window = std::max<std::size_t>(1, config_.latency_window);
  latency_ring_.assign(config_.latency_window, 0.0);

  listen_fd_ = listen_unix(config_.socket_path);
  workers_.reserve(config_.service_workers);
  for (unsigned w = 0; w < config_.service_workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

ServiceDaemon::~ServiceDaemon() { stop(); }

void ServiceDaemon::stop() {
  // Single-caller contract (the owning thread); safe to call twice.
  stopping_.store(true);
  if (listen_fd_ >= 0) accept_unblock(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock every session reader, then join sessions while the workers
  // are still alive — a writer may be waiting on a queued job's future.
  {
    const std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& session : sessions_) shutdown_fd(session->fd);
  }
  reap_sessions(/*all=*/true);
  queue_.close();  // drains: accepted jobs still execute
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    close_fd(listen_fd_);
    listen_fd_ = -1;
    unlink_path(config_.socket_path);
  }
}

void ServiceDaemon::accept_loop() {
  for (;;) {
    const int fd = accept_fd(listen_fd_);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listener broken; stop() still reaps everything
    }
    if (stopping_.load()) {
      close_fd(fd);
      break;
    }
    reap_sessions(/*all=*/false);
    sessions_opened_.fetch_add(1, std::memory_order_relaxed);
    auto session = std::make_unique<Session>();
    session->fd = fd;
    Session* raw = session.get();
    {
      const std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    raw->reader = std::thread([this, raw] { session_reader(*raw); });
    raw->writer = std::thread([this, raw] { session_writer(*raw); });
  }
}

void ServiceDaemon::reap_sessions(bool all) {
  std::vector<std::unique_ptr<Session>> dead;
  {
    const std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (all || (*it)->finished.load()) {
        dead.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& session : dead) {
    if (session->reader.joinable()) session->reader.join();
    if (session->writer.joinable()) session->writer.join();
    close_fd(session->fd);
  }
}

void ServiceDaemon::session_reader(Session& session) {
  Frame frame;
  bool hello_done = false;
  while (recv_frame(session.fd, frame)) {
    if (frame.type == FrameType::kBye) break;

    if (frame.type == FrameType::kHello) {
      try {
        const auto kv = parse_kv_text(frame.payload);
        const auto proto = kv.find("proto");
        if (proto == kv.end() || proto->second != kProtocolName) {
          throw InvalidArgument("service: protocol mismatch");
        }
        session.session_seed = parse_u64_field(kv, "session_seed", 0);
        std::string ack = std::string("proto=") + kProtocolName;
        ack += "\nmc_threads=" + std::to_string(config_.mc_threads);
        ack += "\nworkers=" + std::to_string(config_.service_workers);
        ack += "\nqueue_capacity=" + std::to_string(queue_.capacity());
        session.push_immediate(FrameType::kHelloAck, std::move(ack));
        hello_done = true;
      } catch (const std::exception& e) {
        session.push_immediate(FrameType::kError,
                               std::string("id=0\nerror=") + e.what());
        break;
      }
      continue;
    }

    if (!hello_done) {
      session.push_immediate(FrameType::kError,
                             "id=0\nerror=hello required first");
      break;
    }

    if (frame.type == FrameType::kMetricsReq) {
      session.push_immediate(FrameType::kMetricsDump,
                             metrics_dump_payload());
      continue;
    }

    if (frame.type != FrameType::kRequest) {
      session.push_immediate(
          FrameType::kError,
          std::string("id=0\nerror=unexpected frame ") +
              frame_type_name(frame.type));
      continue;
    }

    // kRequest.  Malformed text never reaches the queue (kError reply,
    // not counted as submitted); a well-formed request is exactly one
    // of accepted / rejected — the accounting identity the bench gate
    // checks.
    std::uint64_t id = 0;
    try {
      auto kv = parse_kv_text(frame.payload);
      id = parse_u64_field(kv, "id", 0);
      kv.erase("id");
      const auto kind_it = kv.find("kind");
      if (kind_it == kv.end() || kind_it->second.empty()) {
        throw InvalidArgument("service: request without kind=");
      }
      Job job;
      job.id = id;
      job.session_seed = session.session_seed;
      job.spec.kind = kind_it->second;
      kv.erase(kind_it);
      job.spec.params = std::move(kv);
      std::future<JobOutcome> future = job.done.get_future();

      jobs_submitted_.fetch_add(1, std::memory_order_relaxed);
      if (queue_.try_push(std::move(job))) {
        jobs_accepted_.fetch_add(1, std::memory_order_relaxed);
        ServiceMetrics::get().accepted.add();
        session.push_future(std::move(future));
      } else {
        jobs_rejected_.fetch_add(1, std::memory_order_relaxed);
        ServiceMetrics::get().rejected.add();
        std::string payload = "id=" + std::to_string(id);
        payload +=
            "\nretry_after_ms=" + std::to_string(config_.retry_after_ms);
        payload += "\nqueue_capacity=" + std::to_string(queue_.capacity());
        session.push_immediate(FrameType::kReject, std::move(payload));
      }
    } catch (const std::exception& e) {
      session.push_immediate(FrameType::kError,
                             "id=" + std::to_string(id) +
                                 "\nerror=" + e.what());
    }
  }
  {
    const std::lock_guard<std::mutex> lock(session.mu);
    session.reader_done = true;
  }
  session.cv.notify_all();
}

void ServiceDaemon::session_writer(Session& session) {
  bool send_ok = true;
  std::unique_lock<std::mutex> lock(session.mu);
  for (;;) {
    session.cv.wait(lock, [&session] {
      return session.reader_done || !session.replies.empty();
    });
    if (session.replies.empty()) {
      if (session.reader_done) break;
      continue;
    }
    Session::ReplySlot slot = std::move(session.replies.front());
    session.replies.pop_front();
    lock.unlock();
    // Waiting on the future happens outside the session lock so the
    // reader keeps admitting while a job runs.  A send failure means
    // the client vanished mid-stream: stop sending but keep draining,
    // so every accepted job's promise is consumed and the daemon's
    // accounting still adds up.
    JobOutcome outcome = slot.immediate ? std::move(slot.outcome)
                                        : slot.future.get();
    if (send_ok && !send_frame(session.fd, outcome.type, outcome.payload)) {
      send_ok = false;
    }
    lock.lock();
  }
  lock.unlock();
  session.finished.store(true);
}

void ServiceDaemon::worker_loop() {
  // The worker-lifetime engine pool: thread_local HopBatchWorkspaces
  // inside measure_waveform_ber live exactly as long as these threads,
  // so the arenas persist across jobs — the pre-shaped workspace pool
  // the daemon promises.
  ThreadPool pool(config_.mc_threads);
  Job job;
  while (queue_.pop(job)) {
    ServiceMetrics::get().queue_depth.set(
        static_cast<double>(queue_.depth()));
    const auto t0 = std::chrono::steady_clock::now();
    JobOutcome outcome;
    const std::string id_line = "id=" + std::to_string(job.id) + "\n";
    try {
      const Json envelope =
          run_job(job.spec, job.session_seed, runtime_, pool);
      outcome.type = FrameType::kResult;
      outcome.payload = id_line + envelope.dump_string(2);
    } catch (const std::exception& e) {
      // Bad params, an infeasible solve, a killed fork worker
      // (ShardWorkerError) — all recoverable: reply kError, keep
      // serving.
      outcome.type = FrameType::kError;
      outcome.payload = id_line + "error=" + e.what();
      jobs_failed_.fetch_add(1, std::memory_order_relaxed);
      ServiceMetrics::get().failed.add();
    }
    const auto t1 = std::chrono::steady_clock::now();
    record_latency(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
    jobs_completed_.fetch_add(1, std::memory_order_relaxed);
    ServiceMetrics::get().completed.add();
    job.done.set_value(std::move(outcome));
  }
}

void ServiceDaemon::record_latency(double ms) {
  std::vector<double> window;
  {
    const std::lock_guard<std::mutex> lock(latency_mu_);
    latency_ring_[latency_next_] = ms;
    latency_next_ = (latency_next_ + 1) % latency_ring_.size();
    latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
    // Refresh the obs gauges every 32 samples (and on the first), not
    // per job — the sort is O(window log window).
    if (latency_count_ != 1 && latency_count_ % 32 != 0) return;
    window.assign(latency_ring_.begin(),
                  latency_ring_.begin() +
                      static_cast<std::ptrdiff_t>(latency_count_));
  }
  ServiceMetrics::get().p50_ms.set(percentile(window, 0.50));
  ServiceMetrics::get().p99_ms.set(percentile(window, 0.99));
}

ServiceDaemon::Stats ServiceDaemon::stats() const {
  Stats stats;
  stats.jobs_submitted = jobs_submitted_.load(std::memory_order_relaxed);
  stats.jobs_accepted = jobs_accepted_.load(std::memory_order_relaxed);
  stats.jobs_rejected = jobs_rejected_.load(std::memory_order_relaxed);
  stats.jobs_completed = jobs_completed_.load(std::memory_order_relaxed);
  stats.jobs_failed = jobs_failed_.load(std::memory_order_relaxed);
  stats.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.depth();
  std::vector<double> window;
  {
    const std::lock_guard<std::mutex> lock(latency_mu_);
    window.assign(latency_ring_.begin(),
                  latency_ring_.begin() +
                      static_cast<std::ptrdiff_t>(latency_count_));
  }
  stats.latency_p50_ms = percentile(window, 0.50);
  stats.latency_p99_ms = percentile(std::move(window), 0.99);
  return stats;
}

}  // namespace comimo::service
