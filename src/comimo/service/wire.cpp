#include "comimo/service/wire.h"

#include <cstring>

#include "comimo/common/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define COMIMO_HAS_SOCKETS 1
#include <cerrno>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define COMIMO_HAS_SOCKETS 0
#endif

namespace comimo::service {

const char* frame_type_name(FrameType type) noexcept {
  switch (type) {
    case FrameType::kHello: return "hello";
    case FrameType::kHelloAck: return "hello_ack";
    case FrameType::kRequest: return "request";
    case FrameType::kResult: return "result";
    case FrameType::kReject: return "reject";
    case FrameType::kError: return "error";
    case FrameType::kMetricsReq: return "metrics_req";
    case FrameType::kMetricsDump: return "metrics_dump";
    case FrameType::kBye: return "bye";
  }
  return "unknown";
}

bool sockets_available() noexcept { return COMIMO_HAS_SOCKETS != 0; }

#if COMIMO_HAS_SOCKETS

namespace {

// MSG_NOSIGNAL keeps a write to a dead peer from killing the process
// with SIGPIPE; platforms without it (macOS) get the per-socket
// SO_NOSIGPIPE equivalent at creation time.
#ifdef MSG_NOSIGNAL
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

void set_nosigpipe(int fd) noexcept {
#ifdef SO_NOSIGPIPE
  int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof(one));
#else
  (void)fd;
#endif
}

bool fill_addr(const std::string& path, sockaddr_un& addr) noexcept {
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return false;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

bool write_exact(int fd, const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EPIPE, ECONNRESET, ... — peer is gone
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool read_exact(int fd, void* data, std::size_t len) noexcept {
  auto* p = static_cast<unsigned char*>(data);
  while (len > 0) {
    const ssize_t n = ::recv(fd, p, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr;
  if (!fill_addr(path, addr)) {
    throw InvalidArgument("service: socket path empty or too long: " + path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw NumericError("service: socket() failed");
  set_nosigpipe(fd);
  ::unlink(path.c_str());  // stale socket from a previous daemon run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    throw NumericError("service: bind failed on " + path);
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    throw NumericError("service: listen failed on " + path);
  }
  return fd;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr;
  if (!fill_addr(path, addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  set_nosigpipe(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

bool send_frame(int fd, FrameType type, std::string_view payload) noexcept {
  if (fd < 0 || payload.size() > kMaxFramePayload) return false;
  unsigned char header[5];
  const auto len = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<unsigned char>(len);
  header[1] = static_cast<unsigned char>(len >> 8);
  header[2] = static_cast<unsigned char>(len >> 16);
  header[3] = static_cast<unsigned char>(len >> 24);
  header[4] = static_cast<unsigned char>(type);
  if (!write_exact(fd, header, sizeof(header))) return false;
  if (payload.empty()) return true;
  return write_exact(fd, payload.data(), payload.size());
}

bool recv_frame(int fd, Frame& out) {
  if (fd < 0) return false;
  unsigned char header[5];
  if (!read_exact(fd, header, sizeof(header))) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxFramePayload) return false;
  out.type = static_cast<FrameType>(header[4]);
  out.payload.resize(len);
  if (len == 0) return true;
  return read_exact(fd, out.payload.data(), len);
}

#else  // !COMIMO_HAS_SOCKETS

int listen_unix(const std::string&, int) {
  throw NumericError("service: AF_UNIX sockets unavailable on this platform");
}
int connect_unix(const std::string&) { return -1; }
void close_fd(int) noexcept {}
bool send_frame(int, FrameType, std::string_view) noexcept { return false; }
bool recv_frame(int, Frame&) { return false; }

#endif  // COMIMO_HAS_SOCKETS

}  // namespace comimo::service
