// Wire protocol of the simulation service: length-prefixed frames over
// an AF_UNIX stream socket.
//
// Frame layout (little-endian, fixed 5-byte header):
//
//   u32 payload_length | u8 frame_type | payload bytes
//
// The conversation is strictly client-driven and per-session ordered:
// the client opens with kHello (proto + session seed), the daemon
// answers kHelloAck, and from then on every client frame produces
// exactly one daemon frame, delivered in request order — kRequest maps
// to kResult, kReject (queue full; carries retry_after_ms) or kError
// (the job failed; the daemon survives), kMetricsReq maps to
// kMetricsDump, and kBye ends the session.  Request/reply payloads are
// newline-separated key=value text except kResult, whose body after the
// "id=<n>" line is a comimo-bench-v1 envelope (see service/job.h for
// the replayability deviation).
//
// Robustness contract: send_frame()/recv_frame() never raise SIGPIPE
// (MSG_NOSIGNAL / SO_NOSIGPIPE) and never throw — a dead peer surfaces
// as `false`, which session code treats as a disconnect, not an error.
// Payloads are capped at kMaxFramePayload so a corrupt length prefix
// cannot drive an unbounded allocation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace comimo::service {

inline constexpr char kProtocolName[] = "comimo-svc-1";
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kRequest = 3,
  kResult = 4,
  kReject = 5,
  kError = 6,
  kMetricsReq = 7,
  kMetricsDump = 8,
  kBye = 9,
};

[[nodiscard]] const char* frame_type_name(FrameType type) noexcept;

struct Frame {
  FrameType type = FrameType::kError;
  std::string payload;
};

/// True when this build has AF_UNIX sockets (POSIX).  The daemon and
/// client constructors throw on platforms without them.
[[nodiscard]] bool sockets_available() noexcept;

/// Binds + listens on an AF_UNIX socket at `path` (an existing socket
/// file is unlinked first).  Throws InvalidArgument on an over-long
/// path, NumericError on any socket failure.
[[nodiscard]] int listen_unix(const std::string& path, int backlog = 16);

/// Connects to the daemon's socket.  Returns -1 on failure (errno is
/// preserved) so callers can poll while the daemon is still binding.
[[nodiscard]] int connect_unix(const std::string& path);

void close_fd(int fd) noexcept;

/// Writes one frame.  False on any failure (peer gone, EPIPE, short
/// write that cannot be completed); never raises SIGPIPE, never throws.
[[nodiscard]] bool send_frame(int fd, FrameType type,
                              std::string_view payload) noexcept;

/// Reads one frame.  False on clean EOF, any read error, or a length
/// prefix above kMaxFramePayload.
[[nodiscard]] bool recv_frame(int fd, Frame& out);

}  // namespace comimo::service
