// The long-lived simulation daemon.
//
// One ServiceDaemon owns what a fleet of one-shot bench processes keeps
// rebuilding: the ē_b preprocessing table (JobRuntime), per-worker
// engine ThreadPools whose thread_local HopBatchWorkspaces persist
// across jobs, and the obs registry.  Clients connect over an AF_UNIX
// socket (service/wire.h), open a session with a seed, and stream job
// requests; results come back in request order as comimo-bench-v1
// envelopes that are byte-replayable (service/job.h).
//
// Thread structure (all joined by stop()):
//
//   accept loop ── one per daemon: accepts, spawns sessions, reaps
//                  finished ones
//   session reader ── parses frames, admits jobs into the shared
//                  JobQueue (kReject + retry_after_ms when full), and
//                  queues the reply slot — rejects included — so the
//                  writer emits every reply in request order
//   session writer ── waits each slot's future, sends the frame; a send
//                  failure (client vanished mid-stream) just stops the
//                  sending, the remaining futures are still drained so
//                  worker promises never dangle
//   service worker ── pops jobs, runs them on its private engine pool
//                  (ServiceConfig::mc_threads — the "threads" value in
//                  every envelope), fulfills the promise.  A job that
//                  throws (bad params, ShardWorkerError from a killed
//                  fork worker) becomes a kError reply; the daemon
//                  never dies with a job.
//
// Liveness/latency accounting: accepted/rejected/completed/failed
// counters plus a fixed-size latency reservoir from which stats()
// computes p50/p99; both are mirrored into obs runtime-domain metrics
// (service.* — excluded from determinism diffs by design).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comimo/energy/ebbar_table.h"
#include "comimo/service/job.h"
#include "comimo/service/queue.h"

namespace comimo::service {

struct ServiceConfig {
  std::string socket_path;
  /// Concurrent job executors (each owns a private engine pool).
  unsigned service_workers = 2;
  /// Engine threads per worker.  Fixed at construction and reported as
  /// "threads" in every envelope, so replay output is independent of
  /// the machine the daemon happens to run on.
  unsigned mc_threads = 1;
  /// Jobs admitted but not yet claimed by a worker; beyond this,
  /// kReject.
  std::size_t queue_capacity = 32;
  /// Retry hint carried in kReject payloads.
  unsigned retry_after_ms = 50;
  /// Latency reservoir size for the p50/p99 estimate.
  std::size_t latency_window = 4096;
  /// ē_b grid for the cached table; tests shrink it, the default is
  /// the paper's full sweep.
  EbBarTable::Spec ebbar_spec{};
  /// Warm-start directory for the serialized ē_b table (see
  /// JobRuntime): non-empty lets a daemon restart load the table from
  /// <dir>/ebbar-<spec hash>.table instead of rebuilding it.  Empty
  /// disables the disk cache.
  std::string table_cache_dir;
};

class ServiceDaemon {
 public:
  /// Binds the socket and starts every thread; throws on bind failure
  /// or invalid config.
  explicit ServiceDaemon(ServiceConfig config);
  ~ServiceDaemon();

  ServiceDaemon(const ServiceDaemon&) = delete;
  ServiceDaemon& operator=(const ServiceDaemon&) = delete;

  /// Idempotent full shutdown: stops accepting, unblocks every session,
  /// drains the queue (accepted jobs still complete), joins all
  /// threads, removes the socket file.
  void stop();

  struct Stats {
    std::uint64_t jobs_submitted = 0;  ///< == accepted + rejected
    std::uint64_t jobs_accepted = 0;
    std::uint64_t jobs_rejected = 0;
    std::uint64_t jobs_completed = 0;  ///< includes failed
    std::uint64_t jobs_failed = 0;
    std::uint64_t sessions_opened = 0;
    std::size_t queue_depth = 0;
    double latency_p50_ms = 0.0;
    double latency_p99_ms = 0.0;
  };
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Session;

  void accept_loop();
  void worker_loop();
  void session_reader(Session& session);
  void session_writer(Session& session);
  void record_latency(double ms);
  void reap_sessions(bool all);

  ServiceConfig config_;
  int listen_fd_ = -1;
  JobQueue queue_;
  JobRuntime runtime_;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> jobs_submitted_{0};
  std::atomic<std::uint64_t> jobs_accepted_{0};
  std::atomic<std::uint64_t> jobs_rejected_{0};
  std::atomic<std::uint64_t> jobs_completed_{0};
  std::atomic<std::uint64_t> jobs_failed_{0};
  std::atomic<std::uint64_t> sessions_opened_{0};

  mutable std::mutex latency_mu_;
  std::vector<double> latency_ring_;
  std::size_t latency_next_ = 0;
  std::size_t latency_count_ = 0;

  std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;

  std::vector<std::thread> workers_;
  std::thread accept_thread_;
};

}  // namespace comimo::service
