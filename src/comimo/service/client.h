// Synchronous client for the simulation daemon.
//
// One ServiceClient is one session: it connects (polling briefly while
// the daemon is still binding), performs the kHello handshake with its
// session seed, and then exchanges frames strictly in order — submit()
// sends a request, next_reply() reads the daemon's next in-order reply,
// call() does both.  The replay contract is the session seed's: two
// clients with the same seed sending the same request sequence read
// byte-identical kResult payloads, whatever the daemon's worker count
// or what other sessions are doing.
//
// The destructor sends kBye best-effort; abort_connection() closes the
// socket abruptly instead — the disconnect-mid-stream robustness tests
// use it to model a client that vanishes while results are in flight.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "comimo/service/job.h"
#include "comimo/service/wire.h"

namespace comimo::service {

class ServiceClient {
 public:
  /// Connects + handshakes.  Retries the connect every few milliseconds
  /// up to `connect_timeout_ms` (the daemon may still be binding), then
  /// throws ConcurrencyError; throws on a handshake failure too.
  ServiceClient(std::string socket_path, std::uint64_t session_seed,
                unsigned connect_timeout_ms = 2000);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  struct Reply {
    FrameType type = FrameType::kError;
    std::uint64_t id = 0;    ///< echoed job id (0 for metrics dumps)
    std::string body;        ///< payload minus the leading id line
  };

  /// Sends one job request; returns the auto-assigned id.  Does not
  /// wait — replies stream back in submission order via next_reply().
  std::uint64_t submit(const JobSpec& spec);

  /// Blocks for the next in-order reply.  Throws ConcurrencyError when
  /// the daemon closed the connection.
  [[nodiscard]] Reply next_reply();

  /// submit() + next_reply() for the common one-at-a-time pattern.
  /// Only valid when no other replies are outstanding.
  [[nodiscard]] Reply call(const JobSpec& spec);

  /// Requests the daemon's obs metrics dump (JSON text).  Only valid
  /// when no other replies are outstanding.
  [[nodiscard]] std::string metrics_dump();

  /// Hard-closes the socket without kBye — the vanished-client model.
  void abort_connection() noexcept;

  [[nodiscard]] std::uint64_t session_seed() const noexcept {
    return session_seed_;
  }
  /// Fields of the daemon's kHelloAck (mc_threads, workers, ...).
  [[nodiscard]] const std::map<std::string, std::string>& hello_ack()
      const noexcept {
    return hello_ack_;
  }

 private:
  int fd_ = -1;
  std::uint64_t session_seed_ = 0;
  std::uint64_t next_id_ = 1;
  std::map<std::string, std::string> hello_ack_;
};

}  // namespace comimo::service
