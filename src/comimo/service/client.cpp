#include "comimo/service/client.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "comimo/common/error.h"

namespace comimo::service {

namespace {

/// Splits "id=<n>\n<rest>" into (id, rest).  Payloads without an id
/// line (metrics dumps) come back as (0, whole payload).
std::pair<std::uint64_t, std::string> split_id_line(
    const std::string& payload) {
  if (payload.rfind("id=", 0) != 0) return {0, payload};
  const std::size_t eol = payload.find('\n');
  const std::string id_text =
      payload.substr(3, (eol == std::string::npos ? payload.size() : eol) - 3);
  char* end = nullptr;
  const unsigned long long id = std::strtoull(id_text.c_str(), &end, 10);
  if (end == id_text.c_str() || *end != '\0') return {0, payload};
  return {static_cast<std::uint64_t>(id),
          eol == std::string::npos ? std::string() : payload.substr(eol + 1)};
}

}  // namespace

ServiceClient::ServiceClient(std::string socket_path,
                             std::uint64_t session_seed,
                             unsigned connect_timeout_ms)
    : session_seed_(session_seed) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(connect_timeout_ms);
  for (;;) {
    fd_ = connect_unix(socket_path);
    if (fd_ >= 0) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      throw ConcurrencyError("service client: cannot connect to " +
                             socket_path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  std::string hello = std::string("proto=") + kProtocolName;
  hello += "\nsession_seed=" + std::to_string(session_seed_);
  Frame ack;
  if (!send_frame(fd_, FrameType::kHello, hello) || !recv_frame(fd_, ack) ||
      ack.type != FrameType::kHelloAck) {
    abort_connection();
    throw ConcurrencyError("service client: handshake failed");
  }
  hello_ack_ = parse_kv_text(ack.payload);
}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) {
    (void)send_frame(fd_, FrameType::kBye, {});
    abort_connection();
  }
}

std::uint64_t ServiceClient::submit(const JobSpec& spec) {
  const std::uint64_t id = next_id_++;
  const std::string payload =
      "id=" + std::to_string(id) + "\n" + spec.serialize();
  if (!send_frame(fd_, FrameType::kRequest, payload)) {
    throw ConcurrencyError("service client: send failed (daemon gone?)");
  }
  return id;
}

ServiceClient::Reply ServiceClient::next_reply() {
  Frame frame;
  if (!recv_frame(fd_, frame)) {
    throw ConcurrencyError("service client: connection closed by daemon");
  }
  Reply reply;
  reply.type = frame.type;
  auto [id, body] = split_id_line(frame.payload);
  reply.id = id;
  reply.body = std::move(body);
  return reply;
}

ServiceClient::Reply ServiceClient::call(const JobSpec& spec) {
  (void)submit(spec);
  return next_reply();
}

std::string ServiceClient::metrics_dump() {
  if (!send_frame(fd_, FrameType::kMetricsReq, {})) {
    throw ConcurrencyError("service client: send failed (daemon gone?)");
  }
  Frame frame;
  if (!recv_frame(fd_, frame) || frame.type != FrameType::kMetricsDump) {
    throw ConcurrencyError("service client: metrics dump failed");
  }
  return frame.payload;
}

void ServiceClient::abort_connection() noexcept {
  close_fd(fd_);
  fd_ = -1;
}

}  // namespace comimo::service
