#include "comimo/service/job.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"
#include "comimo/energy/ebbar.h"
#include "comimo/net/comimonet.h"
#include "comimo/numeric/rng.h"
#include "comimo/obs/metrics.h"
#include "comimo/phy/ber_sweep.h"

namespace comimo::service {

std::map<std::string, std::string> parse_kv_text(std::string_view text) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw InvalidArgument("service: malformed key=value line: " +
                            std::string(line));
    }
    const auto [it, inserted] = out.emplace(line.substr(0, eq),
                                            line.substr(eq + 1));
    if (!inserted) {
      throw InvalidArgument("service: duplicate key: " + it->first);
    }
  }
  return out;
}

std::uint64_t mix_seed(std::uint64_t session_seed,
                       std::uint64_t job_seed) noexcept {
  // Two SplitMix64 outputs over the combined state: the standard
  // seed-expansion trick (numeric/rng.h uses the same generator), so
  // nearby (session, job) pairs land far apart.
  std::uint64_t state =
      session_seed ^ (job_seed + 0x9e3779b97f4a7c15ULL);
  (void)splitmix64(state);
  return splitmix64(state);
}

JobSpec JobSpec::parse(std::string_view text) {
  auto kv = parse_kv_text(text);
  const auto it = kv.find("kind");
  if (it == kv.end() || it->second.empty()) {
    throw InvalidArgument("service: request without kind=");
  }
  JobSpec spec;
  spec.kind = it->second;
  kv.erase(it);
  spec.params = std::move(kv);
  return spec;
}

std::string JobSpec::serialize() const {
  std::string out = "kind=" + kind;
  for (const auto& [k, v] : params) {
    out += '\n';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

namespace {

// Cache hit/miss depend on prior disk state — runtime domain, like the
// other service liveness counters.
struct TableCacheObs {
  obs::Counter hit = obs::MetricRegistry::global().counter(
      "service.table_cache.hit", obs::Domain::kRuntime);
  obs::Counter miss = obs::MetricRegistry::global().counter(
      "service.table_cache.miss", obs::Domain::kRuntime);
};

TableCacheObs& table_cache_obs() {
  static TableCacheObs o;
  return o;
}

// FNV-1a over a canonical full-precision rendering of every Spec field:
// any spec change moves the cache file, so a restart with a new grid
// can never pick up the old table.
std::uint64_t ebbar_spec_hash(const EbBarTable::Spec& spec) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << spec.b_min << '|' << spec.b_max << '|' << spec.m_max;
  for (const double p : spec.ber_targets) os << '|' << p;
  const std::string s = os.str();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool specs_equal(const EbBarTable::Spec& a, const EbBarTable::Spec& b) {
  return a.b_min == b.b_min && a.b_max == b.b_max && a.m_max == b.m_max &&
         a.ber_targets == b.ber_targets;
}

}  // namespace

JobRuntime::JobRuntime(EbBarTable::Spec ebbar_spec, std::string cache_dir)
    : spec_(std::move(ebbar_spec)), cache_dir_(std::move(cache_dir)) {}

std::string JobRuntime::table_cache_path() const {
  if (cache_dir_.empty()) return {};
  std::ostringstream os;
  os << cache_dir_ << "/ebbar-" << std::hex << ebbar_spec_hash(spec_)
     << ".table";
  return os.str();
}

const EbBarTable& JobRuntime::ebbar_table() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (table_) return *table_;
  const std::string path = table_cache_path();
  if (!path.empty()) {
    std::ifstream is(path);
    if (is.good()) {
      try {
        EbBarTable loaded = EbBarTable::load(is);
        // The hash keys the filename, but the file content is what we
        // trust — a hand-copied or collided file must still carry
        // exactly the requested grid.
        if (specs_equal(loaded.spec(), spec_)) {
          table_cache_obs().hit.add();
          table_ = std::make_shared<const EbBarTable>(std::move(loaded));
          return *table_;
        }
      } catch (const std::exception&) {
        // Corrupt or truncated cache file: fall through to a rebuild
        // (which rewrites it).
      }
    }
  }
  table_cache_obs().miss.add();
  table_ = std::make_shared<const EbBarTable>(
      EbBarTable::build(EbBarSolver{}, spec_));
  if (!path.empty()) {
    // Best-effort write-through: a read-only cache dir loses the warm
    // start, never the job.
    std::ofstream os(path);
    if (os.good()) table_->save(os);
  }
  return *table_;
}

namespace {

std::uint64_t get_u64(const JobSpec& spec, const std::string& key,
                      std::uint64_t fallback) {
  const auto it = spec.params.find(key);
  if (it == spec.params.end()) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    throw InvalidArgument("service: param " + key +
                          " is not an integer: " + it->second);
  }
  return static_cast<std::uint64_t>(v);
}

double get_double(const JobSpec& spec, const std::string& key,
                  double fallback, bool required = false) {
  const auto it = spec.params.find(key);
  if (it == spec.params.end()) {
    if (required) {
      throw InvalidArgument("service: missing required param " + key);
    }
    return fallback;
  }
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw InvalidArgument("service: param " + key +
                          " is not a number: " + it->second);
  }
  return v;
}

/// comimo-bench-v1 minus the clock fields (see the header comment).
Json make_envelope(const JobSpec& spec, unsigned threads, Json metrics,
                   std::size_t trials) {
  Json params = Json::object();
  params.set("kind", spec.kind);
  for (const auto& [k, v] : spec.params) params.set(k, v);
  Json record = Json::object();
  record.set("params", std::move(params));
  record.set("metrics", std::move(metrics));
  if (trials > 0) {
    record.set("trials", static_cast<std::uint64_t>(trials));
  }
  Json env = Json::object();
  env.set("schema", "comimo-bench-v1");
  env.set("bench", "service");
  env.set("threads", threads);
  Json records = Json::array();
  records.push(std::move(record));
  env.set("records", std::move(records));
  return env;
}

Json run_ping(const JobSpec& spec, unsigned threads) {
  Json metrics = Json::object();
  metrics.set("ok", 1);
  return make_envelope(spec, threads, std::move(metrics), 0);
}

Json run_ebbar_min(const JobSpec& spec, JobRuntime& rt, unsigned threads) {
  const double p = get_double(spec, "p", 0.0, /*required=*/true);
  const auto mt = static_cast<unsigned>(get_u64(spec, "mt", 2));
  const auto mr = static_cast<unsigned>(get_u64(spec, "mr", 2));
  const EbBarEntry entry = rt.ebbar_table().min_ebar_constellation(p, mt, mr);
  Json metrics = Json::object();
  metrics.set("b", entry.b);
  metrics.set("ebar_j", entry.ebar);
  metrics.set("p_grid", entry.p);
  return make_envelope(spec, threads, std::move(metrics), 0);
}

Json run_waveform_ber(const JobSpec& spec, std::uint64_t session_seed,
                      ThreadPool& pool) {
  WaveformBerConfig cfg;
  cfg.b = static_cast<int>(get_u64(spec, "b", 2));
  cfg.mt = static_cast<unsigned>(get_u64(spec, "mt", 2));
  cfg.mr = static_cast<unsigned>(get_u64(spec, "mr", 2));
  cfg.blocks = static_cast<std::size_t>(get_u64(spec, "blocks", 2000));
  cfg.seed = mix_seed(session_seed, get_u64(spec, "seed", 1));
  cfg.shards = static_cast<std::size_t>(get_u64(spec, "shards", 1));
  cfg.pool = &pool;
  // target_ci > 0 turns the fixed-blocks point into a precision-
  // targeted one (mc/adaptive.h): blocks becomes the trial budget and
  // the sweep stops at the first checkpoint whose BER CI meets the
  // target.  The stopping decision is checkpoint-deterministic, so the
  // replay contract (byte-identical kResult for a fixed session seed
  // and spec) is preserved.  is=1 adds the scaled-variance importance
  // sampler for rare-event points (is_scale overrides the noise tilt ν,
  // is_chan the fade tilt λ — tilt the channel for high-SNR diversity
  // links, see IsMode).
  cfg.adaptive.target_rel_ci = get_double(spec, "target_ci", 0.0);
  if (get_u64(spec, "is", 0) != 0) {
    cfg.adaptive.is_mode = IsMode::kScaledNoise;
    cfg.adaptive.is_noise_scale = get_double(spec, "is_scale", 2.0);
    cfg.adaptive.is_channel_scale = get_double(spec, "is_chan", 1.0);
  }
  const double gamma_b_db = get_double(spec, "gamma_b_db", 8.0);
  const WaveformBerPoint pt = measure_waveform_ber(cfg, gamma_b_db);
  Json metrics = Json::object();
  metrics.set("bits", static_cast<std::uint64_t>(pt.bits));
  metrics.set("bit_errors", static_cast<std::uint64_t>(pt.bit_errors));
  metrics.set("ber", pt.ber);
  metrics.set("analytic_ber", pt.analytic);
  if (cfg.adaptive.target_rel_ci > 0.0) {
    metrics.set("trials_executed",
                static_cast<std::uint64_t>(pt.trials_executed));
    metrics.set("checkpoints", static_cast<std::uint64_t>(pt.checkpoints));
    metrics.set("target_met", pt.target_met ? 1 : 0);
    metrics.set("rel_ci", pt.rel_ci);
    if (pt.ess > 0.0) metrics.set("is_ess", pt.ess);
  }
  return make_envelope(spec, pool.size(), std::move(metrics), cfg.blocks);
}

Json run_net_churn(const JobSpec& spec, std::uint64_t session_seed,
                   ThreadPool& pool) {
  (void)pool;  // the net layer uses the shared pool deterministically
  const auto n = static_cast<std::size_t>(get_u64(spec, "nodes", 400));
  const auto rounds = static_cast<std::size_t>(get_u64(spec, "rounds", 10));
  const auto kill_per_round =
      static_cast<std::size_t>(get_u64(spec, "kill_per_round", 10));
  const std::uint64_t seed = mix_seed(session_seed, get_u64(spec, "seed", 1));
  COMIMO_CHECK(n >= 2 && n <= 200000, "net_churn: nodes out of range");

  CoMimoNet net(random_field(n, 500.0, 500.0, seed), CoMimoNetConfig{});
  std::size_t killed = 0;
  for (std::size_t round = 0; round < rounds; ++round) {
    Rng rng(seed, 1000 + round);
    const std::vector<SuNode>& nodes = net.nodes();
    if (nodes.size() <= 1) break;
    std::vector<NodeId> victims;
    const std::size_t want =
        std::min(kill_per_round, nodes.size() - 1);
    for (std::size_t k = 0; k < want; ++k) {
      victims.push_back(nodes[rng.uniform_int(nodes.size())].id);
    }
    net.remove_nodes(victims);  // duplicate picks are ignored by contract
    killed += want;
  }
  Json metrics = Json::object();
  metrics.set("survivors", static_cast<std::uint64_t>(net.nodes().size()));
  metrics.set("clusters", static_cast<std::uint64_t>(net.clusters().size()));
  metrics.set("links", static_cast<std::uint64_t>(net.links().size()));
  metrics.set("valid", net.validate() ? 1 : 0);
  return make_envelope(spec, pool.size(), std::move(metrics), rounds);
}

Json run_stall(const JobSpec& spec, unsigned threads) {
  const std::uint64_t ms = std::min<std::uint64_t>(
      get_u64(spec, "ms", 50), 10000);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  Json metrics = Json::object();
  metrics.set("stalled_ms", ms);
  return make_envelope(spec, threads, std::move(metrics), 0);
}

}  // namespace

Json run_job(const JobSpec& spec, std::uint64_t session_seed,
             JobRuntime& runtime, ThreadPool& pool) {
  if (spec.kind == "ping") return run_ping(spec, pool.size());
  if (spec.kind == "ebbar_min") {
    return run_ebbar_min(spec, runtime, pool.size());
  }
  if (spec.kind == "waveform_ber") {
    return run_waveform_ber(spec, session_seed, pool);
  }
  if (spec.kind == "net_churn") {
    return run_net_churn(spec, session_seed, pool);
  }
  if (spec.kind == "stall_ms") return run_stall(spec, pool.size());
  throw InvalidArgument("service: unknown job kind: " + spec.kind);
}

}  // namespace comimo::service
