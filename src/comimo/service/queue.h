// Bounded MPMC job queue — the admission-control point of the daemon.
//
// Session readers push, service workers pop.  The queue is the *only*
// cross-session contention point and the mutex is held just long
// enough to move one Job in or out; job execution, result
// serialization, and socket IO all happen outside it.
//
// Admission control is reject-not-block: try_push() on a full queue
// returns false immediately and the session replies kReject with a
// retry_after_ms hint — a slow consumer can never wedge every other
// session behind a blocking push.  That also makes backpressure
// deterministic to test: fill the queue with stall jobs and the
// (capacity + workers + 1)-th concurrent submission must bounce.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <utility>

#include "comimo/service/job.h"
#include "comimo/service/wire.h"

namespace comimo::service {

/// What a worker hands back for one job: the reply frame, ready to send.
struct JobOutcome {
  FrameType type = FrameType::kError;
  std::string payload;
};

struct Job {
  std::uint64_t id = 0;            ///< client-chosen, echoed in the reply
  std::uint64_t session_seed = 0;
  JobSpec spec;
  std::promise<JobOutcome> done;   ///< fulfilled by the executing worker
};

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is full or closed (the admission decision).
  [[nodiscard]] bool try_push(Job&& job) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || q_.size() >= capacity_) return false;
      q_.push_back(std::move(job));
    }
    cv_.notify_one();
    return true;
  }

  /// Blocks for the next job.  False only when the queue is closed and
  /// fully drained — close() lets workers finish queued work first, so
  /// no accepted job's promise is ever abandoned.
  [[nodiscard]] bool pop(Job& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !q_.empty(); });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop_front();
    return true;
  }

  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> q_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace comimo::service
