// Service jobs: the parsed request, the shared caches, and the
// deterministic executor.
//
// A job is (kind, sorted key=value params) plus the session seed.  Its
// result is a *pure function* of exactly those inputs — the replay
// contract the daemon advertises: the same session seed and request
// sequence produce byte-identical kResult payloads whatever the
// service-worker count, the engine thread count, concurrent sessions,
// or reconnects in between.  Three design points make that hold:
//
//   * every randomized job derives its effective engine seed as
//     mix_seed(session_seed, job's own seed param) — a SplitMix64
//     expansion, so per-session streams are independent without the
//     client having to namespace seeds itself;
//   * jobs run on the mc/ engine, whose results are bit-identical at
//     any thread/shard count by construction;
//   * the kResult envelope is comimo-bench-v1 *minus the two clock
//     fields* (timestamp_unix_s, wall_s) — a deliberate, documented
//     deviation: a streamed reply that must be byte-replayable cannot
//     carry wall-clock state.  The committed BENCH_service_load.json
//     written by the load generator keeps the full schema.
//
// Job kinds:
//   ping          -> {ok: 1}                       (liveness / ordering)
//   ebbar_min     -> min-ē_b constellation from the daemon's cached
//                    EbBarTable; params p (BER target), mt, mr
//   waveform_ber  -> one Monte-Carlo waveform BER point; params b, mt,
//                    mr, blocks, gamma_b_db, seed, shards (shards > 1
//                    exercises the fork path under the daemon)
//   net_churn     -> build a random CoMIMONet and run kill waves
//                    through the incremental re-clustering; params
//                    nodes, rounds, kill_per_round, seed
//   stall_ms      -> sleep; params ms (capped) — the deterministic
//                    queue-filler behind the backpressure tests
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "comimo/common/bench_json.h"
#include "comimo/energy/ebbar_table.h"

namespace comimo {
class ThreadPool;
}  // namespace comimo

namespace comimo::service {

/// Parses newline-separated "key=value" lines (blank lines ignored).
/// Throws InvalidArgument on a malformed line or a duplicate key.
[[nodiscard]] std::map<std::string, std::string> parse_kv_text(
    std::string_view text);

/// Effective engine seed for (session, job): a SplitMix64 expansion of
/// the pair, so distinct sessions running the same job spec draw
/// independent streams while a fixed pair is always the same stream.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t session_seed,
                                     std::uint64_t job_seed) noexcept;

struct JobSpec {
  std::string kind;
  /// Sorted (std::map) — the canonical param order used everywhere the
  /// spec is serialized, including the kResult envelope.
  std::map<std::string, std::string> params;

  /// Parses a request body: a "kind=<name>" line plus free-form params.
  /// Throws InvalidArgument when kind is missing or a line is bad.
  [[nodiscard]] static JobSpec parse(std::string_view text);
  [[nodiscard]] std::string serialize() const;
};

/// The daemon-lifetime caches every worker shares: the ē_b table (built
/// once, lazily, under a mutex — the expensive preprocessing step the
/// long-lived service exists to amortize).  Engine workspaces need no
/// cache entry here: measure_waveform_ber keeps one HopBatchWorkspace
/// per pool worker in thread_local storage, and the daemon's per-worker
/// ThreadPools live as long as the daemon, so those arenas persist
/// across jobs for free.
class JobRuntime {
 public:
  /// `cache_dir` non-empty enables the warm-start disk cache: the built
  /// table is serialized to <cache_dir>/ebbar-<spec hash>.table and a
  /// daemon restart with the same spec loads it instead of rebuilding
  /// (the expensive step, minutes at production grid sizes).  The file
  /// is keyed by a hash of every Spec field and its content is
  /// re-validated against the spec after load, so a stale or truncated
  /// file degrades to a rebuild, never to wrong answers.  Hits and
  /// misses are counted as service.table_cache.{hit,miss}.
  explicit JobRuntime(EbBarTable::Spec ebbar_spec,
                      std::string cache_dir = {});

  /// The cached table; first caller pays the build (or the disk load).
  [[nodiscard]] const EbBarTable& ebbar_table();

  [[nodiscard]] const EbBarTable::Spec& ebbar_spec() const noexcept {
    return spec_;
  }

  /// The warm-start file this runtime reads/writes; empty when the disk
  /// cache is disabled.  Exposed for tests and ops tooling.
  [[nodiscard]] std::string table_cache_path() const;

 private:
  EbBarTable::Spec spec_;
  std::string cache_dir_;
  std::mutex mu_;
  std::shared_ptr<const EbBarTable> table_;
};

/// Executes one job on the worker's private pool and returns the
/// kResult envelope (see the file comment for the schema deviation).
/// Throws InvalidArgument on unknown kinds / bad params; engine errors
/// (including ShardWorkerError from a killed fork worker) propagate —
/// the daemon turns any exception into a kError reply and keeps
/// serving.
[[nodiscard]] Json run_job(const JobSpec& spec, std::uint64_t session_seed,
                           JobRuntime& runtime, ThreadPool& pool);

}  // namespace comimo::service
