// Geometry of the §5 null-steering pair.
//
// A pair (St1, St2) of secondary transmitters; St1 is imposed the phase
// delay  δ = π(2r·cosα/w − 1)  where r = |St1−St2|, w the wavelength and
// α = ∠Pr·St1·St2, so the two waves cancel along the direction to the
// primary receiver Pr (far-field condition).
#pragma once

#include "comimo/common/geometry.h"

namespace comimo {

struct PairGeometry {
  Vec2 st1;
  Vec2 st2;

  /// Pair separation r.
  [[nodiscard]] double separation() const { return distance(st1, st2); }

  /// α = ∠(target, St1, St2): the angle at St1 between the rays to the
  /// target and to St2.
  [[nodiscard]] double alpha_to(const Vec2& target) const {
    return angle_at(st1, target, st2);
  }

  /// Midpoint of the pair (array phase center).
  [[nodiscard]] Vec2 center() const { return (st1 + st2) / 2.0; }

  /// Angle between the array axis (St1→St2) and the direction from St1
  /// to `target`, in [0, π] — the far-field pattern variable.
  [[nodiscard]] double axis_angle_to(const Vec2& target) const {
    return angle_at(st1, target, st2);
  }
};

/// The paper's phase delay  δ = π(2r·cosα/w − 1)  imposed on St1 to null
/// the pair's radiation toward `pu` (wavelength w).
[[nodiscard]] double null_steering_phase_delay(const PairGeometry& geom,
                                               double wavelength,
                                               const Vec2& pu);

/// Exact relative phase (St1's wave minus St2's wave) observed at point
/// `x` when St1 carries the extra delay `delta`:  Δφ = δ − k(|St1−x| −
/// |St2−x|), k = 2π/w.  No far-field approximation.
[[nodiscard]] double relative_phase_at(const PairGeometry& geom,
                                       double wavelength, double delta,
                                       const Vec2& x);

/// Far-field relative phase toward a direction making angle θ with the
/// array axis St1→St2: Δφ = δ − k·r·cosθ  (the limit of
/// relative_phase_at as the observation distance grows; at θ = α it
/// equals −π by construction of the paper's δ — the null).
[[nodiscard]] double relative_phase_far_field(double separation,
                                              double wavelength,
                                              double delta,
                                              double theta_rad);

}  // namespace comimo
