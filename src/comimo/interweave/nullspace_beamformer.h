// Null-space projection beamformer — the modern comparator to the
// paper's fixed pairing.
//
// Algorithm 3 hard-wires the array processing: fixed pairs, one imposed
// phase delay each.  The classical alternative computes per-element
// complex weights directly: project the desired steering vector a(Sr)
// onto the orthogonal complement of the span of the protected steering
// vectors {a(PU_k)},
//
//   w = (I − A (AᴴA)⁻¹ Aᴴ) · a(Sr),
//
// which nulls every protected direction exactly (up to near-field
// mismatch) with all N elements contributing gain toward Sr.  The
// ablation bench quantifies what the paper's cheaper scheme gives up.
#pragma once

#include <vector>

#include "comimo/common/geometry.h"
#include "comimo/numeric/cmatrix.h"

namespace comimo {

class NullspaceBeamformer {
 public:
  /// `elements`: transmitter positions; `pus`: protected receivers
  /// (must number fewer than the elements); `sr`: the intended
  /// receiver; `wavelength` in meters.  Weights are normalized to unit
  /// total power ‖w‖² = 1.
  NullspaceBeamformer(std::vector<Vec2> elements, double wavelength,
                      const std::vector<Vec2>& pus, const Vec2& sr);

  [[nodiscard]] const std::vector<cplx>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] std::size_t num_elements() const noexcept {
    return elements_.size();
  }

  /// Field amplitude at an arbitrary point (exact spherical phases).
  [[nodiscard]] double amplitude_at(const Vec2& x) const;

  /// Amplitude relative to a single unit-power element at the same
  /// total transmit power — the fair comparison to the pair schemes
  /// (which also radiate with ‖w‖² = 1 per pair... the caller decides
  /// the normalization story; this class fixes ‖w‖² = 1).
  [[nodiscard]] double gain_at(const Vec2& x) const {
    return amplitude_at(x);
  }

 private:
  /// Steering vector toward `x` (exact near-field phases, unit
  /// amplitude per element).
  [[nodiscard]] std::vector<cplx> steering(const Vec2& x) const;

  std::vector<Vec2> elements_;
  double wavelength_;
  std::vector<cplx> weights_;
};

}  // namespace comimo
