#include "comimo/interweave/nullspace_beamformer.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

NullspaceBeamformer::NullspaceBeamformer(std::vector<Vec2> elements,
                                         double wavelength,
                                         const std::vector<Vec2>& pus,
                                         const Vec2& sr)
    : elements_(std::move(elements)), wavelength_(wavelength) {
  COMIMO_CHECK(wavelength > 0.0, "wavelength must be positive");
  COMIMO_CHECK(elements_.size() >= 2, "need at least two elements");
  COMIMO_CHECK(!pus.empty(), "need at least one protected PU");
  COMIMO_CHECK(pus.size() < elements_.size(),
               "need more elements than protected directions");

  const std::size_t n = elements_.size();
  const std::size_t m = pus.size();

  // The field at x is Σ_i w_i·s_i(x) = s(x)ᵀw, so the null constraint
  // s(PU)ᵀw = 0 is an inner-product constraint against conj(s(PU)):
  // build the constraint columns (and the desired vector, which phase-
  // conjugation beamforming maximizes) from conjugated steering
  // vectors.
  CMatrix a(n, m);
  for (std::size_t k = 0; k < m; ++k) {
    const std::vector<cplx> s = steering(pus[k]);
    for (std::size_t i = 0; i < n; ++i) a(i, k) = std::conj(s[i]);
  }
  std::vector<cplx> desired = steering(sr);
  for (auto& v : desired) v = std::conj(v);

  // w = d − A (AᴴA)⁻¹ Aᴴ d.
  const CMatrix ah = a.hermitian();
  const CMatrix gram = ah * a;  // m×m
  std::vector<cplx> ahd(m, cplx{0.0, 0.0});
  for (std::size_t k = 0; k < m; ++k) {
    cplx acc{0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) {
      acc += std::conj(a(i, k)) * desired[i];
    }
    ahd[k] = acc;
  }
  const std::vector<cplx> coeffs = gram.solve(ahd);
  weights_.assign(n, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < n; ++i) {
    cplx projection{0.0, 0.0};
    for (std::size_t k = 0; k < m; ++k) {
      projection += a(i, k) * coeffs[k];
    }
    weights_[i] = desired[i] - projection;
  }
  // Normalize total radiated power to 1.
  double power = 0.0;
  for (const auto& w : weights_) power += std::norm(w);
  COMIMO_CHECK(power > 1e-20,
               "desired direction lies in the protected span");
  const double inv = 1.0 / std::sqrt(power);
  for (auto& w : weights_) w *= inv;
}

std::vector<cplx> NullspaceBeamformer::steering(const Vec2& x) const {
  const double k = 2.0 * kPi / wavelength_;
  std::vector<cplx> s(elements_.size());
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    const double phase = -k * distance(elements_[i], x);
    s[i] = cplx{std::cos(phase), std::sin(phase)};
  }
  return s;
}

double NullspaceBeamformer::amplitude_at(const Vec2& x) const {
  const std::vector<cplx> s = steering(x);
  cplx field{0.0, 0.0};
  for (std::size_t i = 0; i < elements_.size(); ++i) {
    // Element i radiates weight w_i; the wave accrues the propagation
    // phase encoded in the steering vector.
    field += weights_[i] * s[i];
  }
  return std::abs(field);
}

}  // namespace comimo
