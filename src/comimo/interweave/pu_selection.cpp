#include "comimo/interweave/pu_selection.h"

#include <algorithm>
#include <cmath>

#include "comimo/common/error.h"

namespace comimo {

std::vector<PuCandidateScore> score_pu_candidates(
    const Vec2& st, const Vec2& sr, const std::vector<Vec2>& candidates,
    const PuSelectionWeights& weights) {
  COMIMO_CHECK(!candidates.empty(), "no PU candidates");
  double max_dist = 0.0;
  for (const auto& c : candidates) {
    max_dist = std::max(max_dist, distance(st, c));
  }
  if (max_dist <= 0.0) max_dist = 1.0;

  std::vector<PuCandidateScore> scores;
  scores.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    PuCandidateScore s;
    s.index = i;
    s.distance_m = distance(st, candidates[i]);
    s.angle_rad = angle_at(st, candidates[i], sr);
    // sin(angle) is 1 when Pr⊥Sr as seen from St (best) and 0 when
    // collinear (worst, either direction).
    s.score = weights.distance_weight * (s.distance_m / max_dist) +
              weights.angle_weight * std::sin(s.angle_rad);
    scores.push_back(s);
  }
  std::sort(scores.begin(), scores.end(),
            [](const PuCandidateScore& a, const PuCandidateScore& b) {
              return a.score > b.score;
            });
  return scores;
}

std::size_t select_pu(const Vec2& st, const Vec2& sr,
                      const std::vector<Vec2>& candidates,
                      const PuSelectionWeights& weights) {
  return score_pu_candidates(st, sr, candidates, weights).front().index;
}

}  // namespace comimo
