#include "comimo/interweave/pattern.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/simd/simd.h"

namespace comimo {

namespace {
// The SISO reference: one element of unit amplitude, so a two-element
// pattern value of 2 means full (2×) diversity amplitude.
constexpr double kSisoReference = 1.0;

std::vector<double> angle_grid(double step_deg) {
  COMIMO_CHECK(step_deg > 0.0, "step must be positive");
  std::vector<double> angles;
  for (double a = 0.0; a <= 180.0 + 1e-9; a += step_deg) {
    angles.push_back(a);
  }
  return angles;
}
}  // namespace

double RadiationPattern::null_angle_deg() const {
  COMIMO_CHECK(!amplitudes.empty(), "empty pattern");
  const auto it = std::min_element(amplitudes.begin(), amplitudes.end());
  return angles_deg[static_cast<std::size_t>(
      std::distance(amplitudes.begin(), it))];
}

double RadiationPattern::null_depth() const {
  COMIMO_CHECK(!amplitudes.empty(), "empty pattern");
  return *std::min_element(amplitudes.begin(), amplitudes.end());
}

double RadiationPattern::peak_amplitude() const {
  COMIMO_CHECK(!amplitudes.empty(), "empty pattern");
  return *std::max_element(amplitudes.begin(), amplitudes.end());
}

RadiationPattern ideal_pattern(const NullSteeringPair& pair,
                               double step_deg) {
  RadiationPattern p;
  p.angles_deg = angle_grid(step_deg);
  p.amplitudes.reserve(p.angles_deg.size());
  for (const double a : p.angles_deg) {
    p.amplitudes.push_back(pair.far_field_amplitude(deg_to_rad(a)) /
                           kSisoReference);
  }
  return p;
}

RadiationPattern semicircle_pattern(const NullSteeringPair& pair,
                                    double radius_m, double step_deg) {
  COMIMO_CHECK(radius_m > 0.0, "radius must be positive");
  RadiationPattern p;
  p.angles_deg = angle_grid(step_deg);
  p.amplitudes.reserve(p.angles_deg.size());
  const Vec2 center = pair.geometry().center();
  const Vec2 axis =
      (pair.geometry().st2 - pair.geometry().st1).normalized();
  // Perpendicular completing a right-handed frame; angle 0 = along axis.
  const Vec2 perp{-axis.y, axis.x};
  for (const double a : p.angles_deg) {
    const double t = deg_to_rad(a);
    const Vec2 x = center + (axis * std::cos(t) + perp * std::sin(t)) *
                                radius_m;
    p.amplitudes.push_back(pair.amplitude_at(x) / kSisoReference);
  }
  return p;
}

RadiationPattern measured_pattern(const NullSteeringPair& pair,
                                  double radius_m, double step_deg,
                                  double amplitude_jitter,
                                  double phase_jitter_rad, unsigned trials,
                                  std::uint64_t seed) {
  COMIMO_CHECK(radius_m > 0.0, "radius must be positive");
  COMIMO_CHECK(trials >= 1, "need at least one trial");
  COMIMO_CHECK(amplitude_jitter >= 0.0 && phase_jitter_rad >= 0.0,
               "jitters must be >= 0");
  RadiationPattern p;
  p.angles_deg = angle_grid(step_deg);
  const Vec2 center = pair.geometry().center();
  const Vec2 axis =
      (pair.geometry().st2 - pair.geometry().st1).normalized();
  const Vec2 perp{-axis.y, axis.x};
  const double k = 2.0 * kPi / pair.wavelength();

  // The sweep runs angles in groups of the pinned SIMD lane width,
  // mirroring the hop pipeline's lane grouping: every lane keeps its
  // own deterministic per-angle stream — Rng(seed, angle index), so the
  // pattern is independent of evaluation order and group width — and
  // its scalar transcendentals (sin/cos/|·| have no bit-exact vector
  // counterpart).  The trial loop advances all lanes of a group in
  // lockstep; each lane's draw sequence and field-sum accumulation
  // order match the historical per-angle loop exactly, so the result
  // is bit-identical at every tier, including scalar (group width 1).
  const std::size_t n_angles = p.angles_deg.size();
  const std::size_t group =
      std::max<std::size_t>(std::size_t{1}, simd::batch_width());
  std::vector<Rng> rngs;
  rngs.reserve(group);
  std::vector<double> phi1(group), phi2(group), sum(group);
  p.amplitudes.assign(n_angles, 0.0);
  for (std::size_t a0 = 0; a0 < n_angles; a0 += group) {
    const std::size_t count = std::min(group, n_angles - a0);
    rngs.clear();
    for (std::size_t w = 0; w < count; ++w) {
      const std::size_t angle_idx = a0 + w;
      rngs.emplace_back(seed, angle_idx);
      const double t = deg_to_rad(p.angles_deg[angle_idx]);
      const Vec2 x =
          center + (axis * std::cos(t) + perp * std::sin(t)) * radius_m;
      // Nominal per-element phases (imposed delay + propagation) are
      // pure functions of the angle; the trial loop adds the multipath
      // perturbations on top.
      phi1[w] = pair.delta() - k * distance(pair.geometry().st1, x);
      phi2[w] = -k * distance(pair.geometry().st2, x);
      sum[w] = 0.0;
    }
    for (unsigned trial = 0; trial < trials; ++trial) {
      for (std::size_t w = 0; w < count; ++w) {
        // Each element's wave: nominal phase plus a multipath
        // perturbation of amplitude and phase.
        const double g1 =
            std::max(0.0, 1.0 + amplitude_jitter * rngs[w].gaussian());
        const double g2 =
            std::max(0.0, 1.0 + amplitude_jitter * rngs[w].gaussian());
        const double p1 = phi1[w] + phase_jitter_rad * rngs[w].gaussian();
        const double p2 = phi2[w] + phase_jitter_rad * rngs[w].gaussian();
        const cplx field = cplx{g1 * std::cos(p1), g1 * std::sin(p1)} +
                           cplx{g2 * std::cos(p2), g2 * std::sin(p2)};
        sum[w] += std::abs(field);
      }
    }
    for (std::size_t w = 0; w < count; ++w) {
      p.amplitudes[a0 + w] = sum[w] / trials / kSisoReference;
    }
  }
  return p;
}

}  // namespace comimo
