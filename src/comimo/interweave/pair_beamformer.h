// The §5 null-steering pair beamformer and its ⌊mt/2⌋-pair extension.
//
// Amplitude of the superposed wave (paper):
//   γ² = γ1² + γ2² + 2·γ1·γ2·cos Δ
// where Δ is the relative phase of the two waves at the observation
// point.  A NullSteeringPair fixes δ from the chosen primary receiver;
// PairedBeamformer aggregates several pairs (Algorithm 3 forms ⌊mt/2⌋
// pairs that all take the same action).
#pragma once

#include <vector>

#include "comimo/common/geometry.h"
#include "comimo/interweave/geometry.h"
#include "comimo/numeric/cmatrix.h"

namespace comimo {

/// Two-wave amplitude for relative phase `delta_phase` and per-wave
/// amplitudes γ1, γ2 — the paper's γ formula.
[[nodiscard]] double pair_amplitude(double delta_phase, double gamma1 = 1.0,
                                    double gamma2 = 1.0);

class NullSteeringPair {
 public:
  /// Builds the pair with δ chosen to null toward `pu`.
  NullSteeringPair(const PairGeometry& geom, double wavelength,
                   const Vec2& pu);

  /// Exact (near-field) amplitude of the pair's field at `x`, unit
  /// per-element amplitudes unless overridden.
  [[nodiscard]] double amplitude_at(const Vec2& x, double gamma1 = 1.0,
                                    double gamma2 = 1.0) const;

  /// Complex field at `x` (phase referenced to St2's wave).
  [[nodiscard]] cplx field_at(const Vec2& x) const;

  /// Far-field amplitude toward angle θ from the array axis.
  [[nodiscard]] double far_field_amplitude(double theta_rad) const;

  /// Residual amplitude at the protected PU (≈ 0 in far field).
  [[nodiscard]] double residual_at_pu() const;

  [[nodiscard]] double delta() const noexcept { return delta_; }
  [[nodiscard]] const PairGeometry& geometry() const noexcept {
    return geom_;
  }
  [[nodiscard]] double wavelength() const noexcept { return wavelength_; }
  [[nodiscard]] const Vec2& pu() const noexcept { return pu_; }

 private:
  PairGeometry geom_;
  double wavelength_;
  Vec2 pu_;
  double delta_;
};

/// Algorithm 3's transmit side: ⌊mt/2⌋ pairs, all nulled toward the same
/// PU.  An odd transmitter is left idle (the paper pairs nodes and
/// ignores the remainder).
class PairedBeamformer {
 public:
  /// `nodes`: positions of the mt transmitters; consecutive nodes are
  /// paired in order.
  PairedBeamformer(std::vector<Vec2> nodes, double wavelength,
                   const Vec2& pu);

  [[nodiscard]] std::size_t num_pairs() const noexcept {
    return pairs_.size();
  }
  [[nodiscard]] const std::vector<NullSteeringPair>& pairs() const noexcept {
    return pairs_;
  }

  /// Total field amplitude at `x` (coherent sum over pairs).
  [[nodiscard]] double amplitude_at(const Vec2& x) const;

  /// Residual amplitude at the protected PU.
  [[nodiscard]] double residual_at_pu() const;

 private:
  std::vector<NullSteeringPair> pairs_;
};

/// Extension beyond Algorithm 3 (whose pairs all null the *same* PU):
/// with several primary receivers active, the ⌊mt/2⌋ pairs are assigned
/// round-robin across them.  Each PU is perfectly nulled by its own
/// pairs but sees residual field from the pairs protecting the others —
/// the cost the ablation bench quantifies.
class MultiPuBeamformer {
 public:
  /// `nodes`: the mt transmitter positions, paired in order;
  /// `pus`: the protected primary receivers (≥ 1).
  MultiPuBeamformer(std::vector<Vec2> nodes, double wavelength,
                    std::vector<Vec2> pus);

  [[nodiscard]] std::size_t num_pairs() const noexcept {
    return pairs_.size();
  }
  [[nodiscard]] std::size_t num_pus() const noexcept { return pus_.size(); }
  /// Which PU index pair `p` protects.
  [[nodiscard]] std::size_t assignment(std::size_t pair_index) const;

  /// Total field amplitude at an arbitrary point.
  [[nodiscard]] double amplitude_at(const Vec2& x) const;

  /// Residual amplitude at protected PU `pu_index` (contributions from
  /// the pairs nulling *other* PUs).
  [[nodiscard]] double residual_at(std::size_t pu_index) const;
  /// Worst residual across all protected PUs.
  [[nodiscard]] double worst_residual() const;

 private:
  std::vector<NullSteeringPair> pairs_;
  std::vector<Vec2> pus_;
  std::vector<std::size_t> assignment_;
};

}  // namespace comimo
