#include "comimo/interweave/pair_beamformer.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

double pair_amplitude(double delta_phase, double gamma1, double gamma2) {
  COMIMO_CHECK(gamma1 >= 0.0 && gamma2 >= 0.0, "amplitudes must be >= 0");
  const double g2 = gamma1 * gamma1 + gamma2 * gamma2 +
                    2.0 * gamma1 * gamma2 * std::cos(delta_phase);
  return std::sqrt(std::max(0.0, g2));
}

NullSteeringPair::NullSteeringPair(const PairGeometry& geom,
                                   double wavelength, const Vec2& pu)
    : geom_(geom),
      wavelength_(wavelength),
      pu_(pu),
      delta_(null_steering_phase_delay(geom, wavelength, pu)) {}

double NullSteeringPair::amplitude_at(const Vec2& x, double gamma1,
                                      double gamma2) const {
  const double dphi = relative_phase_at(geom_, wavelength_, delta_, x);
  return pair_amplitude(dphi, gamma1, gamma2);
}

cplx NullSteeringPair::field_at(const Vec2& x) const {
  const double dphi = relative_phase_at(geom_, wavelength_, delta_, x);
  // St2 contributes phase 0 (reference), St1 contributes dphi.
  return cplx{1.0, 0.0} + cplx{std::cos(dphi), std::sin(dphi)};
}

double NullSteeringPair::far_field_amplitude(double theta_rad) const {
  const double dphi = relative_phase_far_field(geom_.separation(),
                                               wavelength_, delta_,
                                               theta_rad);
  return pair_amplitude(dphi);
}

double NullSteeringPair::residual_at_pu() const { return amplitude_at(pu_); }

PairedBeamformer::PairedBeamformer(std::vector<Vec2> nodes, double wavelength,
                                   const Vec2& pu) {
  COMIMO_CHECK(nodes.size() >= 2, "beamformer needs at least one pair");
  const std::size_t num_pairs = nodes.size() / 2;
  pairs_.reserve(num_pairs);
  for (std::size_t i = 0; i < num_pairs; ++i) {
    const PairGeometry geom{nodes[2 * i], nodes[2 * i + 1]};
    pairs_.emplace_back(geom, wavelength, pu);
  }
}

double PairedBeamformer::amplitude_at(const Vec2& x) const {
  cplx field{0.0, 0.0};
  for (const auto& p : pairs_) field += p.field_at(x);
  return std::abs(field);
}

double PairedBeamformer::residual_at_pu() const {
  cplx field{0.0, 0.0};
  for (const auto& p : pairs_) field += p.field_at(p.pu());
  return std::abs(field);
}

MultiPuBeamformer::MultiPuBeamformer(std::vector<Vec2> nodes,
                                     double wavelength,
                                     std::vector<Vec2> pus)
    : pus_(std::move(pus)) {
  COMIMO_CHECK(nodes.size() >= 2, "beamformer needs at least one pair");
  COMIMO_CHECK(!pus_.empty(), "need at least one protected PU");
  const std::size_t num_pairs = nodes.size() / 2;
  pairs_.reserve(num_pairs);
  assignment_.reserve(num_pairs);
  for (std::size_t i = 0; i < num_pairs; ++i) {
    const std::size_t pu = i % pus_.size();
    const PairGeometry geom{nodes[2 * i], nodes[2 * i + 1]};
    pairs_.emplace_back(geom, wavelength, pus_[pu]);
    assignment_.push_back(pu);
  }
}

std::size_t MultiPuBeamformer::assignment(std::size_t pair_index) const {
  COMIMO_CHECK(pair_index < assignment_.size(), "pair index out of range");
  return assignment_[pair_index];
}

double MultiPuBeamformer::amplitude_at(const Vec2& x) const {
  cplx field{0.0, 0.0};
  for (const auto& p : pairs_) field += p.field_at(x);
  return std::abs(field);
}

double MultiPuBeamformer::residual_at(std::size_t pu_index) const {
  COMIMO_CHECK(pu_index < pus_.size(), "pu index out of range");
  cplx field{0.0, 0.0};
  for (const auto& p : pairs_) field += p.field_at(pus_[pu_index]);
  return std::abs(field);
}

double MultiPuBeamformer::worst_residual() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < pus_.size(); ++i) {
    worst = std::max(worst, residual_at(i));
  }
  return worst;
}

}  // namespace comimo
