// Radiation-pattern evaluation (Fig. 8).
//
// Samples the pair beamformer's amplitude on a circle of receivers,
// either ideal (line-of-sight, the "simulated radiation pattern" curve)
// or through independent multipath realizations per element (the
// "measured" curve whose null is non-zero).
#pragma once

#include <cstdint>
#include <vector>

#include "comimo/interweave/pair_beamformer.h"

namespace comimo {

struct RadiationPattern {
  std::vector<double> angles_deg;
  std::vector<double> amplitudes;  ///< normalized to the SISO reference 1.0

  /// Angle (deg) of the minimum amplitude.
  [[nodiscard]] double null_angle_deg() const;
  /// Minimum amplitude (null depth).
  [[nodiscard]] double null_depth() const;
  /// Maximum amplitude.
  [[nodiscard]] double peak_amplitude() const;
};

/// Ideal far-field pattern of `pair` over [0°, 180°], `step_deg` apart;
/// θ is measured from the array axis.
[[nodiscard]] RadiationPattern ideal_pattern(const NullSteeringPair& pair,
                                             double step_deg = 1.0);

/// Near-field pattern on a semicircle of radius `radius_m` centered at
/// the pair midpoint (the paper's 2 m-diameter receiver track).  Angles
/// are measured from the array axis.
[[nodiscard]] RadiationPattern semicircle_pattern(
    const NullSteeringPair& pair, double radius_m, double step_deg = 20.0);

/// Like semicircle_pattern but each element's wave takes an independent
/// multipath-perturbed path: amplitude and phase of each element get a
/// random perturbation of the given strengths (Rician-like scatter),
/// averaged over `trials` packets — the measured Fig. 8 curve.
[[nodiscard]] RadiationPattern measured_pattern(
    const NullSteeringPair& pair, double radius_m, double step_deg,
    double amplitude_jitter, double phase_jitter_rad, unsigned trials,
    std::uint64_t seed);

}  // namespace comimo
