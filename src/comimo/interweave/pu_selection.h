// Algorithm 3 step 1 — choosing which PU's frequency to share.
//
// "the head can pick the PU such that it is as far as possible from C-St
// and/or the line segments of C-St·Pr and C-St·C-Sr are not as collinear
// as possible."  The score combines normalized distance with the sine of
// the angle between the Pr and Sr directions (1 = perpendicular = full
// diversity at Sr, 0 = collinear = the null also kills Sr).
#pragma once

#include <cstddef>
#include <vector>

#include "comimo/common/geometry.h"

namespace comimo {

struct PuSelectionWeights {
  double distance_weight = 0.5;
  double angle_weight = 1.0;
};

struct PuCandidateScore {
  std::size_t index = 0;
  double distance_m = 0.0;
  double angle_rad = 0.0;  ///< ∠(Pr, St, Sr)
  double score = 0.0;
};

/// Scores every candidate PU as seen from the transmit-cluster position
/// `st` with the intended secondary receiver at `sr`; highest score
/// first.
[[nodiscard]] std::vector<PuCandidateScore> score_pu_candidates(
    const Vec2& st, const Vec2& sr, const std::vector<Vec2>& candidates,
    const PuSelectionWeights& weights = {});

/// Index of the best candidate (Algorithm 3's pick).  Throws
/// InvalidArgument on an empty candidate list.
[[nodiscard]] std::size_t select_pu(const Vec2& st, const Vec2& sr,
                                    const std::vector<Vec2>& candidates,
                                    const PuSelectionWeights& weights = {});

}  // namespace comimo
