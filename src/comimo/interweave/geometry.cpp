#include "comimo/interweave/geometry.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

double null_steering_phase_delay(const PairGeometry& geom, double wavelength,
                                 const Vec2& pu) {
  COMIMO_CHECK(wavelength > 0.0, "wavelength must be positive");
  const double r = geom.separation();
  COMIMO_CHECK(r > 0.0, "pair nodes must be distinct");
  const double alpha = geom.alpha_to(pu);
  return kPi * (2.0 * r * std::cos(alpha) / wavelength - 1.0);
}

double relative_phase_at(const PairGeometry& geom, double wavelength,
                         double delta, const Vec2& x) {
  COMIMO_CHECK(wavelength > 0.0, "wavelength must be positive");
  const double k = 2.0 * kPi / wavelength;
  const double d1 = distance(geom.st1, x);
  const double d2 = distance(geom.st2, x);
  return delta - k * (d1 - d2);
}

double relative_phase_far_field(double separation, double wavelength,
                                double delta, double theta_rad) {
  COMIMO_CHECK(wavelength > 0.0 && separation > 0.0,
               "invalid array parameters");
  const double k = 2.0 * kPi / wavelength;
  return delta - k * separation * std::cos(theta_rad);
}

}  // namespace comimo
