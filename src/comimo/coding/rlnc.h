// Rateless random linear network coding (RLNC) over GF(2)/GF(256).
//
// The cooperative hop's ARQ recovers an erased long-haul slot with a
// full retransmission dialogue (ACK timeout + truncated-exponential
// backoff per loss).  RLNC replaces that with rateless redundancy: the
// source cuts a generation of k packets, transmits the k source rows
// (systematic) followed by random linear combinations, and the receiver
// decodes as soon as ANY k linearly independent packets arrive —
// losses cost one extra coded packet each, not a round trip.  Relays
// recombine the coded packets they hold without decoding (recoding),
// so an intermediate hop forwards useful innovation even from an
// incomplete buffer — the sparsenc D2D architecture.
//
// Determinism: every coefficient draw comes from a caller-supplied
// counter-based Rng (mc/engine's (seed, trial) streams), and the GF
// region kernels are exact byte arithmetic at every SIMD tier, so runs
// replay bit-for-bit at any thread count and dispatch mode.
//
// Robustness contract: RlncDecoder::add and RelayRecoder::add accept
// arbitrary (adversarial) packets — truncated, oversized, duplicated,
// reordered, or linearly dependent input is rejected or absorbed, never
// fatal, and rank() counts exactly the dimension of the received span
// (never reporting full rank falsely).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comimo/coding/galois.h"

namespace comimo {
class Rng;
}  // namespace comimo

namespace comimo::coding {

struct RlncConfig {
  std::size_t generation_size = 16;  ///< k: source packets per generation
  std::size_t packet_bytes = 64;     ///< payload bytes per packet (0 = rank
                                     ///< tracking only, no payload)
  GfField field = GfField::kGf256;
  bool systematic = true;  ///< first k transmissions are the source rows
  /// Banded/sparse generation: coded coefficients are nonzero only in a
  /// contiguous band of this width at a random start (cheaper decode,
  /// mild overhead increase).  0 or >= generation_size = dense.
  std::size_t band_width = 0;
};

/// Throws InvalidArgument on malformed knobs.
void validate(const RlncConfig& config);

/// One coded packet: k coefficients (one byte each, GF(2) restricted to
/// {0, 1}) plus the combined payload.
struct CodedPacket {
  std::vector<std::uint8_t> coeffs;
  std::vector<std::uint8_t> payload;
};

/// Systematic + rateless encoder over one generation.  `data` is split
/// into k rows of packet_bytes (zero-padded); the encoder is immutable
/// after construction and safe to share across sequential hops.
class RlncEncoder {
 public:
  /// Validates config; pads `data` to k·packet_bytes.
  RlncEncoder(RlncConfig config, std::vector<std::uint8_t> data);

  [[nodiscard]] const RlncConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t generation_size() const noexcept {
    return config_.generation_size;
  }

  /// Transmission `seq` of the rateless stream: with systematic coding
  /// the first k are the source rows verbatim (no rng consumption);
  /// every later one is coded(rng).
  [[nodiscard]] CodedPacket packet(std::size_t seq, Rng& rng) const;

  /// A fresh random combination (dense or banded per config).  Consumes
  /// one draw per coefficient in the band plus one for the band start.
  [[nodiscard]] CodedPacket coded(Rng& rng) const;

  /// Source row i (also what a complete decode must reproduce).
  [[nodiscard]] const std::vector<std::uint8_t>& source_row(
      std::size_t i) const;

 private:
  RlncConfig config_;
  std::vector<std::vector<std::uint8_t>> rows_;
};

/// Incremental Gaussian-elimination decoder with rank tracking and
/// partial-delivery accounting.  Rows are kept fully reduced (online
/// RREF): every accepted packet is eliminated against all pivots and
/// all stored rows are re-reduced against a new pivot, so once
/// rank == k each row IS its source packet, and before that
/// decodable_now() counts the source packets already recoverable.
class RlncDecoder {
 public:
  explicit RlncDecoder(RlncConfig config);

  /// Feeds one received packet.  Returns true when it was innovative
  /// (raised the rank).  Malformed packets (coefficient or payload
  /// length mismatch) are counted in rejected() and refused; dependent
  /// packets simply return false.  Never throws on packet content.
  bool add(const CodedPacket& packet);

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] bool complete() const noexcept {
    return rank_ == config_.generation_size;
  }
  [[nodiscard]] std::size_t rejected() const noexcept { return rejected_; }

  /// Source packets recoverable right now (pivot rows reduced to unit
  /// vectors); equals generation_size once complete().
  [[nodiscard]] std::size_t decodable_now() const noexcept;

  /// Is source packet `i` recoverable right now?
  [[nodiscard]] bool source_decodable(std::size_t i) const noexcept;

  /// Source payload i.  Precondition: source_decodable(i) (checked).
  [[nodiscard]] const std::vector<std::uint8_t>& source_packet(
      std::size_t i) const;

  /// A random recombination of the current basis (what a relay
  /// forwards): fresh coefficients over the stored rows, so the output
  /// spans exactly the received subspace.  Precondition: rank() >= 1
  /// (checked).  Consumes one draw per basis row.
  [[nodiscard]] CodedPacket combine(Rng& rng) const;

  [[nodiscard]] const RlncConfig& config() const noexcept { return config_; }

 private:
  RlncConfig config_;
  std::vector<std::uint8_t> present_;  ///< pivot-indexed row occupancy
  std::vector<std::vector<std::uint8_t>> coeffs_;
  std::vector<std::vector<std::uint8_t>> payload_;
  std::size_t rank_ = 0;
  std::size_t rejected_ = 0;
  // Scratch reused across add() calls — no steady-state allocation once
  // the generation's row shapes have been seen.
  mutable std::vector<std::uint8_t> scratch_coeffs_;
  mutable std::vector<std::uint8_t> scratch_payload_;
};

/// Store-and-recode relay: buffers the innovative part of what it hears
/// (bounded memory: at most k rows, kept as a reduced basis) and emits
/// fresh random combinations downstream WITHOUT decoding.  rank() is
/// the innovation the relay can pass on; a downstream decoder can never
/// exceed it.
class RelayRecoder {
 public:
  explicit RelayRecoder(RlncConfig config);

  /// Same contract as RlncDecoder::add (reject malformed, absorb
  /// dependent, never fatal).
  bool add(const CodedPacket& packet);

  [[nodiscard]] std::size_t rank() const noexcept { return basis_.rank(); }
  [[nodiscard]] std::size_t rejected() const noexcept {
    return basis_.rejected();
  }

  /// A recoded packet for the next hop.  Precondition: rank() >= 1.
  [[nodiscard]] CodedPacket recode(Rng& rng) const;

 private:
  RlncDecoder basis_;  ///< reused as the reduced-basis store
};

}  // namespace comimo::coding
