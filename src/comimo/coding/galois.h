// Galois-field arithmetic for the RLNC coding layer.
//
// Two fields cover random linear network coding in practice:
//   * GF(2): coefficients are single bits (stored one per byte here),
//     multiplication is AND, addition is XOR — cheap but a random coded
//     packet is non-innovative with probability ~2^-rank_deficit;
//   * GF(256): byte coefficients over the 0x11D polynomial — a random
//     packet is innovative with probability ≥ 1 − 2^-8, which is what
//     makes rateless "one extra coded packet" recovery work.
// Scalar ops use the compile-time log/exp tables; the region (row)
// operations — where Gaussian elimination and relay recoding spend all
// of their time — dispatch through the numeric/simd runtime table, so
// they ride PSHUFB on AVX2 and vqtbl on NEON, honor -DCOMIMO_SIMD=OFF,
// and (being exact byte arithmetic) are bit-identical at every tier.
#pragma once

#include <cstddef>
#include <cstdint>

namespace comimo {
class Rng;
}  // namespace comimo

namespace comimo::coding {

/// The coefficient field a code operates in.
enum class GfField : std::uint8_t { kGf2, kGf256 };

[[nodiscard]] const char* field_name(GfField field) noexcept;

// ---- scalar GF(256) arithmetic (0x11D, generator 2) -------------------

[[nodiscard]] constexpr std::uint8_t gf_add(std::uint8_t a,
                                            std::uint8_t b) noexcept {
  return a ^ b;
}

[[nodiscard]] std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept;

/// a / b.  Precondition: b != 0 (checked).
[[nodiscard]] std::uint8_t gf_div(std::uint8_t a, std::uint8_t b);

/// Multiplicative inverse.  Precondition: a != 0 (checked).
[[nodiscard]] std::uint8_t gf_inv(std::uint8_t a);

/// a^n (n >= 0; a^0 == 1 including a == 0 by convention).
[[nodiscard]] std::uint8_t gf_pow(std::uint8_t a, unsigned n) noexcept;

// ---- region (row) operations — SIMD dispatched ------------------------

/// dst[i] ^= c ⊗ src[i] for len bytes; dst and src must not alias.
/// c == 1 is the GF(2) add, c == 0 a no-op.
void gf_mul_add_row(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint8_t c, std::size_t len) noexcept;

/// buf[i] = c ⊗ buf[i] for len bytes.
void gf_mul_region(std::uint8_t* buf, std::uint8_t c,
                   std::size_t len) noexcept;

/// dst[i] ^= src[i] for len bytes; dst and src must not alias.
void gf_xor_row(std::uint8_t* dst, const std::uint8_t* src,
                std::size_t len) noexcept;

// ---- field-generic helpers -------------------------------------------

/// A uniform coefficient draw from `field` (GF(2): one bit; GF(256):
/// one byte), consuming exactly one rng.next() either way so coefficient
/// streams stay field-independent in length.
[[nodiscard]] std::uint8_t draw_coefficient(GfField field, Rng& rng) noexcept;

/// Inverse valid in either field (values in GF(2) are {0, 1}, whose
/// GF(256) inverse coincides).  Precondition: a != 0.
[[nodiscard]] inline std::uint8_t field_inv(GfField /*field*/,
                                            std::uint8_t a) {
  return gf_inv(a);
}

}  // namespace comimo::coding
