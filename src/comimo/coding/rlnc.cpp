#include "comimo/coding/rlnc.h"

#include <algorithm>
#include <utility>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo::coding {

namespace {

constexpr std::size_t kMaxGeneration = 255;

[[nodiscard]] bool is_unit_row(const std::vector<std::uint8_t>& row,
                               std::size_t pivot) noexcept {
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (row[j] != (j == pivot ? 1 : 0)) return false;
  }
  return true;
}

}  // namespace

void validate(const RlncConfig& config) {
  COMIMO_CHECK(config.generation_size >= 1 &&
                       config.generation_size <= kMaxGeneration,
                   "RlncConfig.generation_size must be in [1, 255]");
  COMIMO_CHECK(config.band_width <= config.generation_size,
                   "RlncConfig.band_width must be <= generation_size");
}

// ---- RlncEncoder ------------------------------------------------------

RlncEncoder::RlncEncoder(RlncConfig config, std::vector<std::uint8_t> data)
    : config_(config) {
  validate(config_);
  const std::size_t k = config_.generation_size;
  COMIMO_CHECK(data.size() <= k * config_.packet_bytes,
                   "RlncEncoder: data larger than one generation");
  rows_.assign(k, std::vector<std::uint8_t>(config_.packet_bytes, 0));
  for (std::size_t i = 0; i < data.size(); ++i) {
    rows_[i / config_.packet_bytes][i % config_.packet_bytes] = data[i];
  }
}

CodedPacket RlncEncoder::packet(std::size_t seq, Rng& rng) const {
  const std::size_t k = config_.generation_size;
  if (config_.systematic && seq < k) {
    CodedPacket out;
    out.coeffs.assign(k, 0);
    out.coeffs[seq] = 1;
    out.payload = rows_[seq];
    return out;
  }
  return coded(rng);
}

CodedPacket RlncEncoder::coded(Rng& rng) const {
  const std::size_t k = config_.generation_size;
  const bool banded = config_.band_width > 0 && config_.band_width < k;
  const std::size_t width = banded ? config_.band_width : k;
  // The band-start draw happens even for dense generations so switching
  // band_width never shifts unrelated streams sharing the same Rng.
  const std::size_t start = static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::uint64_t>(k - width + 1)));

  CodedPacket out;
  out.coeffs.assign(k, 0);
  bool any = false;
  for (std::size_t j = 0; j < width; ++j) {
    const std::uint8_t c = draw_coefficient(config_.field, rng);
    out.coeffs[start + j] = c;
    any = any || c != 0;
  }
  // An all-zero draw carries no information; pin the band head to 1 so
  // every coded packet is a valid (possibly dependent) combination.
  if (!any) out.coeffs[start] = 1;

  out.payload.assign(config_.packet_bytes, 0);
  for (std::size_t i = 0; i < k; ++i) {
    if (out.coeffs[i] == 0) continue;
    gf_mul_add_row(out.payload.data(), rows_[i].data(), out.coeffs[i],
                   config_.packet_bytes);
  }
  return out;
}

const std::vector<std::uint8_t>& RlncEncoder::source_row(
    std::size_t i) const {
  COMIMO_CHECK(i < rows_.size(), "RlncEncoder::source_row index out of range");
  return rows_[i];
}

// ---- RlncDecoder ------------------------------------------------------

RlncDecoder::RlncDecoder(RlncConfig config) : config_(config) {
  validate(config_);
  const std::size_t k = config_.generation_size;
  present_.assign(k, 0);
  coeffs_.resize(k);
  payload_.resize(k);
}

bool RlncDecoder::add(const CodedPacket& packet) {
  const std::size_t k = config_.generation_size;
  if (packet.coeffs.size() != k ||
      packet.payload.size() != config_.packet_bytes) {
    ++rejected_;
    return false;
  }
  if (complete()) return false;  // nothing can be innovative any more

  scratch_coeffs_ = packet.coeffs;
  scratch_payload_ = packet.payload;

  // Forward elimination against every stored pivot.  Stored row i has a
  // 1 at pivot column i and 0 at every OTHER pivot column (the basis
  // invariant), so each subtraction zeroes exactly one pivot column of
  // the incoming row and never reintroduces another — one pass, any
  // order, leaves all pivot columns zero.
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint8_t c = scratch_coeffs_[i];
    if (c == 0 || !present_[i]) continue;
    gf_mul_add_row(scratch_coeffs_.data(), coeffs_[i].data(), c, k);
    if (config_.packet_bytes > 0) {
      gf_mul_add_row(scratch_payload_.data(), payload_[i].data(), c,
                     config_.packet_bytes);
    }
  }
  // The residual's first nonzero column (necessarily pivot-free) is the
  // new pivot; a fully-eliminated row was linearly dependent.
  std::size_t pivot = k;
  for (std::size_t i = 0; i < k; ++i) {
    if (scratch_coeffs_[i] != 0) {
      pivot = i;
      break;
    }
  }
  if (pivot == k) return false;

  // Normalize the new pivot row to a leading 1.
  const std::uint8_t lead = scratch_coeffs_[pivot];
  if (lead != 1) {
    const std::uint8_t inv = field_inv(config_.field, lead);
    gf_mul_region(scratch_coeffs_.data(), inv, k);
    if (config_.packet_bytes > 0) {
      gf_mul_region(scratch_payload_.data(), inv, config_.packet_bytes);
    }
  }

  // Back-reduce every stored row against the new pivot so the matrix
  // stays in reduced row-echelon form (keeps decodable_now() exact).
  for (std::size_t i = 0; i < k; ++i) {
    if (!present_[i]) continue;
    const std::uint8_t c = coeffs_[i][pivot];
    if (c == 0) continue;
    gf_mul_add_row(coeffs_[i].data(), scratch_coeffs_.data(), c, k);
    if (config_.packet_bytes > 0) {
      gf_mul_add_row(payload_[i].data(), scratch_payload_.data(), c,
                     config_.packet_bytes);
    }
  }

  coeffs_[pivot] = scratch_coeffs_;
  payload_[pivot] = scratch_payload_;
  present_[pivot] = 1;
  ++rank_;
  return true;
}

std::size_t RlncDecoder::decodable_now() const noexcept {
  std::size_t n = 0;
  for (std::size_t i = 0; i < present_.size(); ++i) {
    if (present_[i] && is_unit_row(coeffs_[i], i)) ++n;
  }
  return n;
}

bool RlncDecoder::source_decodable(std::size_t i) const noexcept {
  return i < present_.size() && present_[i] && is_unit_row(coeffs_[i], i);
}

const std::vector<std::uint8_t>& RlncDecoder::source_packet(
    std::size_t i) const {
  COMIMO_CHECK(source_decodable(i),
               "RlncDecoder::source_packet: packet not yet decodable");
  return payload_[i];
}

CodedPacket RlncDecoder::combine(Rng& rng) const {
  COMIMO_CHECK(rank_ >= 1, "RlncDecoder::combine requires rank >= 1");
  const std::size_t k = config_.generation_size;
  CodedPacket out;
  out.coeffs.assign(k, 0);
  out.payload.assign(config_.packet_bytes, 0);
  std::size_t first = k;
  bool any = false;
  for (std::size_t i = 0; i < k; ++i) {
    if (!present_[i]) continue;
    if (first == k) first = i;
    const std::uint8_t r = draw_coefficient(config_.field, rng);
    if (r == 0) continue;
    any = true;
    gf_mul_add_row(out.coeffs.data(), coeffs_[i].data(), r, k);
    if (config_.packet_bytes > 0) {
      gf_mul_add_row(out.payload.data(), payload_[i].data(), r,
                     config_.packet_bytes);
    }
  }
  if (!any) {
    // All-zero draw: fall back to forwarding the first basis row.
    out.coeffs = coeffs_[first];
    out.payload = payload_[first];
  }
  return out;
}

// ---- RelayRecoder -----------------------------------------------------

RelayRecoder::RelayRecoder(RlncConfig config) : basis_(std::move(config)) {}

bool RelayRecoder::add(const CodedPacket& packet) {
  return basis_.add(packet);
}

CodedPacket RelayRecoder::recode(Rng& rng) const { return basis_.combine(rng); }

}  // namespace comimo::coding
