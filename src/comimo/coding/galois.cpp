#include "comimo/coding/galois.h"

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/simd/gf256_tables.h"
#include "comimo/numeric/simd/simd.h"

namespace comimo::coding {

const char* field_name(GfField field) noexcept {
  switch (field) {
    case GfField::kGf2:
      return "gf2";
    case GfField::kGf256:
      return "gf256";
  }
  return "gf256";
}

std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) noexcept {
  if (a == 0 || b == 0) return 0;
  const auto& t = simd::kGf256;
  return t.exp[t.log[a] + t.log[b]];
}

std::uint8_t gf_div(std::uint8_t a, std::uint8_t b) {
  COMIMO_CHECK(b != 0, "GF(256) division by zero");
  if (a == 0) return 0;
  const auto& t = simd::kGf256;
  return t.exp[255 + t.log[a] - t.log[b]];
}

std::uint8_t gf_inv(std::uint8_t a) {
  COMIMO_CHECK(a != 0, "GF(256) inverse of zero");
  const auto& t = simd::kGf256;
  return t.exp[255 - t.log[a]];
}

std::uint8_t gf_pow(std::uint8_t a, unsigned n) noexcept {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const auto& t = simd::kGf256;
  // log(a^n) = n·log(a) mod 255.
  const unsigned e = (static_cast<unsigned>(t.log[a]) * n) % 255u;
  return t.exp[e];
}

void gf_mul_add_row(std::uint8_t* dst, const std::uint8_t* src,
                    std::uint8_t c, std::size_t len) noexcept {
  simd::active_kernels().gf256_mul_add_row(dst, src, c, len);
}

void gf_mul_region(std::uint8_t* buf, std::uint8_t c,
                   std::size_t len) noexcept {
  simd::active_kernels().gf256_mul_region(buf, c, len);
}

void gf_xor_row(std::uint8_t* dst, const std::uint8_t* src,
                std::size_t len) noexcept {
  simd::active_kernels().gf_region_xor(dst, src, len);
}

std::uint8_t draw_coefficient(GfField field, Rng& rng) noexcept {
  const std::uint64_t bits = rng.next();
  // Top bits of Xoshiro output are the well-mixed ones.
  if (field == GfField::kGf2) return static_cast<std::uint8_t>(bits >> 63);
  return static_cast<std::uint8_t>(bits >> 56);
}

}  // namespace comimo::coding
