// Bit bookkeeping: packing, PRBS generation, error counting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "comimo/phy/modulation.h"

namespace comimo {

/// Expands bytes to bits, MSB first.
[[nodiscard]] BitVec bytes_to_bits(std::span<const std::uint8_t> bytes);

/// Packs bits (MSB first) back into bytes; the bit count must be a
/// multiple of 8.
[[nodiscard]] std::vector<std::uint8_t> bits_to_bytes(
    std::span<const std::uint8_t> bits);

/// Deterministic pseudo-random bit sequence for BER runs (seeded).
[[nodiscard]] BitVec random_bits(std::size_t n, std::uint64_t seed);

/// Number of differing positions; the spans must have equal length.
[[nodiscard]] std::size_t count_bit_errors(std::span<const std::uint8_t> a,
                                           std::span<const std::uint8_t> b);

/// Pads the bit vector with zeros to a multiple of `m`.
[[nodiscard]] BitVec pad_to_multiple(BitVec bits, std::size_t m);

}  // namespace comimo
