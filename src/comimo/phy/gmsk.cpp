#include "comimo/phy/gmsk.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/numeric/special.h"

namespace comimo {

GmskModem::GmskModem(const GmskConfig& config) : config_(config) {
  COMIMO_CHECK(config.samples_per_symbol >= 2, "need >= 2 samples/symbol");
  COMIMO_CHECK(config.bt > 0.0 && config.bt <= 1.0, "BT in (0, 1]");
  COMIMO_CHECK(config.pulse_span_symbols >= 1, "pulse span >= 1 symbol");

  // Gaussian frequency pulse g(t), t in symbol units, truncated to
  // [-span/2, span/2]:  g(t) = [Q(a(t-1/2)) - Q(a(t+1/2))] with
  // a = 2πBT/√(ln 2); discretized at sps samples/symbol and normalized
  // so Σ g = 1/2 (modulation index h = 0.5 ⇒ π/2 phase per bit).
  const unsigned sps = config.samples_per_symbol;
  const unsigned span = config.pulse_span_symbols;
  const std::size_t len = static_cast<std::size_t>(span) * sps + 1;
  pulse_.resize(len);
  const double a = 2.0 * kPi * config.bt / std::sqrt(std::log(2.0));
  const double half_span = static_cast<double>(span) / 2.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < len; ++i) {
    const double t =
        static_cast<double>(i) / static_cast<double>(sps) - half_span;
    const double v = q_function(a * (t - 0.5)) - q_function(a * (t + 0.5));
    pulse_[i] = v;
    sum += v;
  }
  COMIMO_CHECK(sum > 0.0, "degenerate Gaussian pulse");
  const double scale = 0.5 / sum;
  for (auto& v : pulse_) v *= scale;
}

std::size_t GmskModem::samples_for_bits(std::size_t n) const noexcept {
  return (n + config_.pulse_span_symbols) * config_.samples_per_symbol;
}

std::vector<cplx> GmskModem::modulate(
    std::span<const std::uint8_t> bits) const {
  const unsigned sps = config_.samples_per_symbol;
  const std::size_t n_samples = samples_for_bits(bits.size());

  // Superpose the frequency pulses of all bits (NRZ ±1), then integrate.
  std::vector<double> freq(n_samples, 0.0);
  for (std::size_t k = 0; k < bits.size(); ++k) {
    COMIMO_DCHECK(bits[k] <= 1, "bits must be 0/1");
    const double nrz = bits[k] ? 1.0 : -1.0;
    const std::size_t start = k * sps;
    for (std::size_t i = 0; i < pulse_.size(); ++i) {
      const std::size_t idx = start + i;
      if (idx >= n_samples) break;
      freq[idx] += nrz * pulse_[i];
    }
  }
  std::vector<cplx> out(n_samples);
  double phase = 0.0;
  for (std::size_t i = 0; i < n_samples; ++i) {
    // Each bit contributes a total phase of ±π (2π·h with Σg = 1/2 and
    // the conventional 2π frequency-to-phase factor)… with h = 0.5 the
    // per-bit phase advance is π·Σg·2 = π/2 when using the factor π.
    phase += 2.0 * kPi * freq[i] * 0.5;  // h = 0.5
    out[i] = cplx{std::cos(phase), std::sin(phase)};
  }
  return out;
}

BitVec GmskModem::demodulate(std::span<const cplx> samples,
                             std::size_t num_bits) const {
  const unsigned sps = config_.samples_per_symbol;
  const std::size_t group_delay =
      static_cast<std::size_t>(config_.pulse_span_symbols) * sps / 2;
  BitVec bits;
  bits.reserve(num_bits);
  for (std::size_t k = 0; k < num_bits; ++k) {
    // Differential window centered on bit k's pulse (which peaks at
    // k·sps + group_delay): the phase advance across [peak − sps/2,
    // peak + sps/2] carries sign(bit).
    const std::size_t hi = k * sps + group_delay + sps / 2;
    const std::size_t lo = hi - sps;
    if (hi >= samples.size()) {
      bits.push_back(0);  // truncated frame: pad with zeros
      continue;
    }
    const cplx d = samples[hi] * std::conj(samples[lo]);
    bits.push_back(d.imag() > 0.0 ? std::uint8_t{1} : std::uint8_t{0});
  }
  return bits;
}

}  // namespace comimo
