// GMSK modem.
//
// The paper's underlay testbed (§6.4) transmits image packets with
// Gaussian-filtered MSK at 250 kbps.  This modem follows the classical
// construction: NRZ bits → Gaussian frequency pulse (BT configurable,
// 0.3 by default, matching GNU Radio's gmsk_mod) → phase integrator with
// modulation index h = 0.5 → complex baseband exp(jφ).  Demodulation is
// the noncoherent one-symbol differential detector (quadrature demod),
// which is what the GNU Radio receive chain effectively implements and
// which tolerates the unknown carrier phase of a real USRP link.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comimo/numeric/cmatrix.h"
#include "comimo/phy/modulation.h"

namespace comimo {

struct GmskConfig {
  /// Samples per symbol.
  unsigned samples_per_symbol = 4;
  /// Bandwidth-time product of the Gaussian pulse.
  double bt = 0.3;
  /// Pulse span in symbols (the FIR truncation).
  unsigned pulse_span_symbols = 4;
};

class GmskModem {
 public:
  explicit GmskModem(const GmskConfig& config = {});

  /// Modulates bits to unit-envelope baseband samples.  The output is
  /// padded by the pulse span so the final bit's phase ramp completes.
  [[nodiscard]] std::vector<cplx> modulate(
      std::span<const std::uint8_t> bits) const;

  /// Differential detection; `num_bits` tells the demodulator how many
  /// decisions to make (the frame length is known to the receiver from
  /// the header, as in the testbed).
  [[nodiscard]] BitVec demodulate(std::span<const cplx> samples,
                                  std::size_t num_bits) const;

  /// Number of samples modulate() produces for n bits.
  [[nodiscard]] std::size_t samples_for_bits(std::size_t n) const noexcept;

  [[nodiscard]] const GmskConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::vector<double>& frequency_pulse() const noexcept {
    return pulse_;
  }

 private:
  GmskConfig config_;
  std::vector<double> pulse_;  // integrates to 1/2 (h = 0.5 phase per bit)
};

}  // namespace comimo
