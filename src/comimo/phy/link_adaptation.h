// The §2.3 variable-rate system in closed loop.
//
// The energy model assumes "a variable-rate system, where b can be
// different at different cooperative links"; this module supplies the
// controller that picks b online: given the measured post-combining
// SNR, select the largest constellation whose analytic BER stays under
// the target (with a hysteresis margin against fading flutter), and a
// waveform-level simulator that runs the controller over a correlated
// Rayleigh track to verify the BER target and quantify the throughput
// advantage over any fixed constellation.
#pragma once

#include <cstdint>
#include <vector>

namespace comimo {

struct LinkAdaptationConfig {
  double target_ber = 1e-3;
  int b_min = 1;
  int b_max = 8;               ///< waveform modulators support 1..8
  double hysteresis_db = 1.0;  ///< SNR backoff before stepping b up
};

class AdaptiveModulationController {
 public:
  explicit AdaptiveModulationController(const LinkAdaptationConfig& config);

  /// Minimum per-bit SNR [dB] at which constellation b meets the target
  /// BER (inverts the paper's A·Q(√(B·γ)) approximation).
  [[nodiscard]] double required_snr_db(int b) const;

  /// Largest feasible b at the measured per-bit SNR (after the
  /// hysteresis backoff); b_min when even that is infeasible (the link
  /// then runs at b_min and misses the target, which the simulator
  /// reports honestly).
  [[nodiscard]] int select_b(double snr_db) const;

  [[nodiscard]] const LinkAdaptationConfig& config() const noexcept {
    return config_;
  }

 private:
  LinkAdaptationConfig config_;
  std::vector<double> required_snr_db_;  // indexed b - b_min
};

/// Outcome of a closed-loop run.
struct AdaptationRun {
  std::size_t symbols = 0;
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  double ber = 0.0;
  double mean_bits_per_symbol = 0.0;  ///< the throughput figure
  std::vector<std::size_t> b_histogram;  ///< index b-1 → blocks at b
};

struct AdaptiveLinkScenario {
  double mean_snr_db = 15.0;    ///< average channel SNR
  double fading_rho = 0.995;    ///< per-block channel correlation
  std::size_t blocks = 2000;    ///< adaptation epochs
  std::size_t symbols_per_block = 50;
  std::uint64_t seed = 1;
  /// Fixed constellation instead of adaptation; 0 = adaptive.
  int fixed_b = 0;
};

/// Runs BPSK/MQAM over a correlated Rayleigh track with per-block
/// adaptation (or a fixed b) and coherent detection.
[[nodiscard]] AdaptationRun simulate_adaptive_link(
    const LinkAdaptationConfig& config, const AdaptiveLinkScenario& scenario);

}  // namespace comimo
