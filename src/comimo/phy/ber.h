// Analytic bit-error-rate references.
//
// These are the closed forms behind the paper's eqs. (5)–(6): the MQAM
// AWGN approximation and its average over the Rayleigh-MIMO diversity
// statistic ‖H‖²_F ~ Gamma(mt·mr, 1).  The testbed's measured BERs are
// validated against these in the integration tests.
#pragma once

namespace comimo {

/// Uncoded BPSK over AWGN: Q(√(2·γb)).
[[nodiscard]] double ber_bpsk_awgn(double gamma_b) noexcept;

/// The paper's MQAM AWGN approximation (eq. (5) integrand):
///   (4/b)(1 − 2^{-b/2}) · Q(√( 3b/(M−1) · γb ))   for b ≥ 2,
/// falling back to BPSK for b == 1.  `gamma_b` is per-bit SNR.
[[nodiscard]] double ber_mqam_awgn(int b, double gamma_b);

/// Leading coefficient A(b) and SNR factor B(b) of the approximation
/// written as A·Q(√(B·γb)).
[[nodiscard]] double mqam_coefficient(int b);
[[nodiscard]] double mqam_snr_factor(int b);

/// BPSK over flat Rayleigh fading (single branch), exact:
/// ½(1 − √(γ/(1+γ))).
[[nodiscard]] double ber_bpsk_rayleigh(double gamma_b) noexcept;

/// The paper's average BER (eqs. (5)–(6)): MQAM with b bits over an
/// mt × mr i.i.d. Rayleigh channel with orthogonal STBC and per-branch
/// per-bit SNR γb = ē_b/(N0·mt) per unit ‖H‖²_F; evaluated in closed
/// form via the Gamma-average identity.
[[nodiscard]] double ber_mqam_rayleigh_mimo(int b, double gamma_b,
                                            unsigned mt, unsigned mr);

/// Differential 1-bit-detected GMSK over AWGN (approximation used for
/// sanity bounds in the testbed tests): Q(√(2·η·γb)) with efficiency
/// η ≈ 0.68 for BT = 0.3.
[[nodiscard]] double ber_gmsk_awgn_approx(double gamma_b,
                                          double eta = 0.68) noexcept;

/// Packet error rate for independent bit errors:
/// 1 − (1 − ber)^bits.
[[nodiscard]] double per_from_ber(double ber, double bits) noexcept;

}  // namespace comimo
