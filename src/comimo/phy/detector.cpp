#include "comimo/phy/detector.h"

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {

BitVec bytes_to_bits(std::span<const std::uint8_t> bytes) {
  BitVec bits;
  bits.reserve(bytes.size() * 8);
  for (const auto byte : bytes) {
    for (int k = 7; k >= 0; --k) {
      bits.push_back(static_cast<std::uint8_t>((byte >> k) & 1u));
    }
  }
  return bits;
}

std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits) {
  COMIMO_CHECK(bits.size() % 8 == 0, "bit count must be a multiple of 8");
  std::vector<std::uint8_t> bytes;
  bytes.reserve(bits.size() / 8);
  for (std::size_t i = 0; i < bits.size(); i += 8) {
    std::uint8_t byte = 0;
    for (int k = 0; k < 8; ++k) {
      byte = static_cast<std::uint8_t>((byte << 1) |
                                       (bits[i + static_cast<std::size_t>(k)] & 1u));
    }
    bytes.push_back(byte);
  }
  return bytes;
}

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVec bits(n);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  return bits;
}

std::size_t count_bit_errors(std::span<const std::uint8_t> a,
                             std::span<const std::uint8_t> b) {
  COMIMO_CHECK(a.size() == b.size(), "error counting needs equal lengths");
  std::size_t errors = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & 1u) != (b[i] & 1u)) ++errors;
  }
  return errors;
}

BitVec pad_to_multiple(BitVec bits, std::size_t m) {
  COMIMO_CHECK(m >= 1, "multiple must be >= 1");
  const std::size_t rem = bits.size() % m;
  if (rem != 0) bits.resize(bits.size() + (m - rem), 0);
  return bits;
}

}  // namespace comimo
