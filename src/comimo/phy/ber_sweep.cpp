#include "comimo/phy/ber_sweep.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/numeric/cmatrix.h"
#include "comimo/phy/ber.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"

namespace comimo {

WaveformBerPoint measure_waveform_ber(const WaveformBerConfig& config,
                                      double gamma_b_db) {
  COMIMO_CHECK(config.b >= 1 && config.b <= 8, "b in 1..8");
  COMIMO_CHECK(config.mt >= 1 && config.mt <= kMaxStbcTx,
               "mt outside the STBC design range");
  COMIMO_CHECK(config.mr >= 1, "need a receive antenna");
  COMIMO_CHECK(config.blocks >= 1, "need at least one block");

  const auto modem = make_modulator(config.b);
  const StbcCode code = StbcCode::for_antennas(config.mt);
  const StbcDecoder decoder(code);
  const std::size_t kk = code.symbols_per_block();
  const std::size_t bits_per_block = kk * static_cast<std::size_t>(config.b);
  const double gamma_b = db_to_linear(gamma_b_db);
  // Per-bit received energy γ_b·N0 (unit noise) per unit ‖H‖²_F; the
  // rate-1/2 designs transmit each symbol twice, so divide by the
  // symbol weight — the same bookkeeping as testbed/coop_hop_sim.
  const double sym_scale = std::sqrt(static_cast<double>(config.b) *
                                     gamma_b / code.symbol_weight());
  const unsigned mr = config.mr;

  McConfig mc;
  mc.seed = config.seed;
  mc.chunk_size = config.chunk_size;
  mc.pool = config.pool;

  const McResult run = run_trials(
      config.blocks, mc, [&](std::size_t, Rng& rng, McAccumulator& acc) {
        BitVec bits(bits_per_block);
        for (auto& bit : bits) bit = rng.bernoulli(0.5) ? 1 : 0;
        std::vector<cplx> syms = modem->modulate(bits);
        for (auto& s : syms) s *= sym_scale;

        const CMatrix h = CMatrix::random_gaussian(mr, config.mt, rng);
        const CMatrix c = code.encode(syms);  // T × mt, power scale applied
        CMatrix received(code.block_length(), mr);
        for (std::size_t t = 0; t < code.block_length(); ++t) {
          for (unsigned j = 0; j < mr; ++j) {
            cplx v{0.0, 0.0};
            for (unsigned i = 0; i < config.mt; ++i) {
              v += c(t, i) * h(j, i);
            }
            received(t, j) = v + rng.complex_gaussian(1.0);
          }
        }

        std::vector<cplx> est = decoder.decode(h, received);
        for (auto& v : est) v /= sym_scale;
        const BitVec decoded = modem->demodulate(est);
        acc.count("bit_errors", count_bit_errors(bits, decoded));
        acc.count("bits", bits_per_block);
      });

  WaveformBerPoint point;
  point.gamma_b_db = gamma_b_db;
  point.bits = run.acc.counter("bits");
  point.bit_errors = run.acc.counter("bit_errors");
  point.ber = point.bits
                  ? static_cast<double>(point.bit_errors) /
                        static_cast<double>(point.bits)
                  : 0.0;
  point.estimate = run.acc.rate("bit_errors", "bits");
  point.analytic =
      ber_mqam_rayleigh_mimo(config.b, gamma_b, config.mt, config.mr);
  point.info = run.info;
  return point;
}

std::vector<WaveformBerPoint> waveform_ber_curve(
    const WaveformBerConfig& config, const std::vector<double>& gamma_b_db) {
  std::vector<WaveformBerPoint> curve;
  curve.reserve(gamma_b_db.size());
  for (std::size_t i = 0; i < gamma_b_db.size(); ++i) {
    // Each point gets its own stream family so curve points stay
    // independent of the grid shape.
    WaveformBerConfig point_cfg = config;
    point_cfg.seed = config.seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    curve.push_back(measure_waveform_ber(point_cfg, gamma_b_db[i]));
  }
  return curve;
}

}  // namespace comimo
