#include "comimo/phy/ber_sweep.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/simd/simd.h"
#include "comimo/obs/metrics.h"
#include "comimo/phy/ber.h"
#include "comimo/mc/sharded.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/hop_batch.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"

namespace comimo {

namespace {
// Same metric as link_workspace.cpp's per-block counter (the registry is
// idempotent, so both handles hit one cell); the batch path adds W per
// call instead of 1 per block.
obs::Counter& batch_link_blocks_counter() {
  static obs::Counter c =
      obs::MetricRegistry::global().counter("phy.link_blocks");
  return c;
}

// Effective sample size (Σw)²/Σw² recovered from the weight stream's
// Welford state: Σw = n·mean, Σw² = m2 + n·mean².
double ess_from_weights(const RunningStats& w) {
  if (w.count() == 0) return 0.0;
  const RunningStats::Raw r = w.raw();
  const double n = static_cast<double>(r.n);
  const double sum_w = n * r.mean;
  const double sum_w2 = r.m2 + n * r.mean * r.mean;
  return sum_w2 > 0.0 ? sum_w * sum_w / sum_w2 : 0.0;
}
}  // namespace

WaveformBerKernel::WaveformBerKernel(int b, unsigned mt, unsigned mr,
                                     double gamma_b)
    : modem_(make_modulator(b)),
      decoder_(StbcCode::for_antennas(mt)),
      mr_(mr) {
  COMIMO_CHECK(b >= 1 && b <= 8, "b in 1..8");
  COMIMO_CHECK(mt >= 1 && mt <= kMaxStbcTx,
               "mt outside the STBC design range");
  COMIMO_CHECK(mr >= 1, "need a receive antenna");
  const StbcCode& code = decoder_.code();
  bits_per_block_ = code.symbols_per_block() * static_cast<std::size_t>(b);
  // Per-bit received energy γ_b·N0 (unit noise) per unit ‖H‖²_F; the
  // rate-1/2 designs transmit each symbol twice, so divide by the
  // symbol weight — the same bookkeeping as testbed/coop_hop_sim.
  sym_scale_ =
      std::sqrt(static_cast<double>(b) * gamma_b / code.symbol_weight());
}

std::size_t WaveformBerKernel::run_block(LinkWorkspace& ws, Rng& rng) const {
  ws.bits.resize(bits_per_block_);
  for (auto& bit : ws.bits) bit = rng.bernoulli(0.5) ? 1 : 0;
  modem_->modulate_into(ws.bits, ws.symbols);
  for (auto& s : ws.symbols) s *= sym_scale_;
  simulate_block(decoder_, ws, rng);
  for (auto& v : ws.estimates) v /= sym_scale_;
  modem_->demodulate_into(ws.estimates, ws.decoded);
  return count_bit_errors(ws.bits, ws.decoded);
}

WaveformBerKernel::IsBlock WaveformBerKernel::run_block_is(
    LinkWorkspace& ws, Rng& rng, double noise_scale,
    double channel_scale) const {
  COMIMO_DCHECK(noise_scale >= 1.0, "IS noise scale must be >= 1");
  COMIMO_DCHECK(channel_scale >= 1.0, "IS channel scale must be >= 1");
  ws.bits.resize(bits_per_block_);
  for (auto& bit : ws.bits) bit = rng.bernoulli(0.5) ? 1 : 0;
  modem_->modulate_into(ws.bits, ws.symbols);
  for (auto& s : ws.symbols) s *= sym_scale_;
  const TiltedBlockEnergy energy = simulate_block_tilted(
      decoder_, ws, rng, noise_scale, 1.0 / channel_scale);
  for (auto& v : ws.estimates) v /= sym_scale_;
  modem_->demodulate_into(ws.estimates, ws.decoded);
  IsBlock out;
  out.bit_errors = count_bit_errors(ws.bits, ws.decoded);
  // Likelihood ratio of the block's draws under the nominal CN(0,1)
  // densities f versus the proposals g — noise CN(0,ν), channel
  // CN(0,1/λ) — in log space for stability:
  //   log w = N·log ν − (1 − 1/ν)·Σ|n|²  −  Nh·log λ + (λ − 1)·Σ|h|².
  const double n_samples = static_cast<double>(decoder_.code().block_length() *
                                               static_cast<std::size_t>(mr_));
  const double nh = static_cast<double>(decoder_.code().num_tx() *
                                        static_cast<std::size_t>(mr_));
  out.weight = std::exp(n_samples * std::log(noise_scale) -
                        (1.0 - 1.0 / noise_scale) * energy.noise_sq -
                        nh * std::log(channel_scale) +
                        (channel_scale - 1.0) * energy.channel_sq);
  return out;
}

void WaveformBerKernel::prepare_batch(LinkBatchWorkspace& ws,
                                      std::size_t width) const {
  ws.configure(decoder_.code(), mr_, width, bits_per_block_);
}

std::size_t WaveformBerKernel::run_block_batch(LinkBatchWorkspace& ws,
                                               Rng* rngs,
                                               std::size_t count) const {
  COMIMO_DCHECK(count >= 1 && count <= ws.width,
                "count must fit the configured lane width");
  const std::size_t w_count = ws.width;

  // Tail (or degenerate width-1) path: the plain scalar kernel per lane,
  // with its bits mirrored into the lane-major staging so callers see
  // one layout regardless of which path ran.
  if (w_count == 1 || count < w_count) {
    std::size_t errors = 0;
    for (std::size_t w = 0; w < count; ++w) {
      errors += run_block(ws.lane_ws, rngs[w]);
      std::uint8_t* bits_out = ws.bits.data() + w * bits_per_block_;
      std::uint8_t* dec_out = ws.decoded.data() + w * bits_per_block_;
      for (std::size_t i = 0; i < bits_per_block_; ++i) {
        bits_out[i] = ws.lane_ws.bits[i];
        dec_out[i] = ws.lane_ws.decoded[i];
      }
    }
    return errors;
  }

  const simd::BatchKernels& k = simd::active_kernels();
  COMIMO_DCHECK(w_count == k.width,
                "workspace width must match the pinned SIMD lane width");
  const StbcCode& code = decoder_.code();
  const std::size_t mt = code.num_tx();
  const std::size_t tt = code.block_length();
  const std::size_t kk = code.symbols_per_block();
  const std::size_t mr = mr_;
  const cplx* coeff_a = code.coeff_a_flat().data();
  const cplx* coeff_b = code.coeff_b_flat().data();

  // Source bits and modulation stay scalar per lane: bit draws must
  // consume lane w's generator exactly like run_block, and the symbol
  // map is a table lookup.  Unscaled symbols stage through lane_ws and
  // scatter into the SoA planes.
  for (std::size_t w = 0; w < w_count; ++w) {
    std::uint8_t* lane_bits = ws.bits.data() + w * bits_per_block_;
    for (std::size_t i = 0; i < bits_per_block_; ++i) {
      lane_bits[i] = rngs[w].bernoulli(0.5) ? 1 : 0;
    }
    modem_->modulate_into({lane_bits, bits_per_block_}, ws.lane_ws.symbols);
    for (std::size_t s = 0; s < kk; ++s) {
      ws.sym_re[s * w_count + w] = ws.lane_ws.symbols[s].real();
      ws.sym_im[s * w_count + w] = ws.lane_ws.symbols[s].imag();
    }
  }
  k.scale(ws.sym_re.data(), ws.sym_im.data(), kk, sym_scale_);

  // The link itself: channel draw, STBC encode, propagate, AWGN — the
  // simulate_block() sequence, W lanes per op.
  simd::random_gaussian_fill_batch(ws.h_re.data(), ws.h_im.data(), mr * mt,
                                   w_count, rngs, 1.0);
  k.stbc_encode(coeff_a, coeff_b, tt, mt, kk, code.power_scale(),
                ws.sym_re.data(), ws.sym_im.data(), ws.enc_re.data(),
                ws.enc_im.data());
  k.multiply_transposed(ws.enc_re.data(), ws.enc_im.data(), ws.h_re.data(),
                        ws.h_im.data(), ws.rx_re.data(), ws.rx_im.data(), tt,
                        mt, mr);
  simd::add_scaled_noise_into_batch(ws.rx_re.data(), ws.rx_im.data(), tt * mr,
                                    w_count, rngs, 1.0);

  // ML decode: the F/y build and the normal-equation dot products are
  // vectorized; the pivoted solve is data-dependent per lane, so each
  // lane's gram/rhs is extracted and solved with the scalar eliminator
  // — the exact code path (and bits) of StbcDecoder::decode_into.
  const std::size_t rows = 2 * tt * mr;
  const std::size_t cols = 2 * kk;
  k.stbc_build_fy(coeff_a, coeff_b, tt, mt, kk, mr, code.power_scale(),
                  ws.h_re.data(), ws.h_im.data(), ws.rx_re.data(),
                  ws.rx_im.data(), ws.f.data(), ws.y.data());
  k.gram_rhs(ws.f.data(), ws.y.data(), rows, cols, ws.gram.data(),
             ws.rhs.data());
  StbcDecodeScratch& sc = ws.solve_scratch;
  for (std::size_t w = 0; w < w_count; ++w) {
    sc.gram.resize(cols, cols);
    sc.rhs.assign(cols, cplx{0.0, 0.0});
    for (std::size_t c1 = 0; c1 < cols; ++c1) {
      for (std::size_t c2 = 0; c2 < cols; ++c2) {
        sc.gram(c1, c2) = cplx{ws.gram[(c1 * cols + c2) * w_count + w], 0.0};
      }
      sc.rhs[c1] = cplx{ws.rhs[c1 * w_count + w], 0.0};
    }
    sc.gram.solve_into(sc.rhs, sc.x, sc.solve_work);
    for (std::size_t s = 0; s < kk; ++s) {
      ws.est_re[s * w_count + w] = sc.x[2 * s].real();
      ws.est_im[s * w_count + w] = sc.x[2 * s + 1].real();
    }
  }
  k.divide(ws.est_re.data(), ws.est_im.data(), kk, sym_scale_);

  // Hard demapping.  BPSK keeps its sign rule (distance ties at ±0
  // would flip the bit the sign rule picks); QAM runs the vector
  // distance argmin and unpacks labels MSB-first like demodulate_into.
  const int b = modem_->bits_per_symbol();
  if (b == 1) {
    for (std::size_t w = 0; w < w_count; ++w) {
      std::uint8_t* dec_out = ws.decoded.data() + w * bits_per_block_;
      for (std::size_t s = 0; s < kk; ++s) {
        dec_out[s] = bpsk_hard_bit(ws.est_re[s * w_count + w]);
      }
    }
  } else {
    const std::vector<cplx>& points = modem_->constellation();
    k.qam_nearest(ws.est_re.data(), ws.est_im.data(), kk, points.data(),
                  points.size(), ws.labels.data());
    for (std::size_t w = 0; w < w_count; ++w) {
      std::uint8_t* dec_out = ws.decoded.data() + w * bits_per_block_;
      std::size_t pos = 0;
      for (std::size_t s = 0; s < kk; ++s) {
        const std::uint32_t label = ws.labels[s * w_count + w];
        for (int bit = b - 1; bit >= 0; --bit) {
          dec_out[pos++] =
              static_cast<std::uint8_t>((label >> bit) & 1u);
        }
      }
    }
  }

  std::size_t errors = 0;
  for (std::size_t w = 0; w < w_count; ++w) {
    errors += count_bit_errors(
        {ws.bits.data() + w * bits_per_block_, bits_per_block_},
        {ws.decoded.data() + w * bits_per_block_, bits_per_block_});
  }
  batch_link_blocks_counter().add(w_count);
  return errors;
}

void WaveformBerKernel::prepare_batch(HopBatchWorkspace& ws,
                                      std::size_t width) const {
  prepare_batch(ws.link, width);
}

std::size_t WaveformBerKernel::run_block_batch(HopBatchWorkspace& ws,
                                               Rng* rngs,
                                               std::size_t count) const {
  return run_block_batch(ws.link, rngs, count);
}

WaveformBerPoint measure_waveform_ber(const WaveformBerConfig& config,
                                      double gamma_b_db) {
  COMIMO_CHECK(config.blocks >= 1, "need at least one block");

  const double gamma_b = db_to_linear(gamma_b_db);
  const WaveformBerKernel kernel(config.b, config.mt, config.mr, gamma_b);
  const std::size_t bits_per_block = kernel.bits_per_block();

  McConfig mc;
  mc.seed = config.seed;
  mc.chunk_size = config.chunk_size;
  mc.pool = config.pool;
  const ShardOptions shard_options{config.shards, /*fork=*/true};

  // With a vector tier pinned, W consecutive blocks of each chunk run
  // through the batch-SoA kernel; each lane is bit-identical to the
  // scalar run_block on the same (seed, trial) stream and the grouping
  // is worker-count invariant, so both paths produce the same counters
  // — the scalar branch is the W == 1 / kill-switch shape of the same
  // measurement.  Sharding splits the global chunk range across worker
  // processes and folds per-chunk accumulators in global chunk order,
  // so the counters are also shard-count invariant (mc/sharded.h).
  const std::size_t width = simd::batch_width();
  const bool adaptive_on = config.adaptive.target_rel_ci > 0.0;
  const bool is_on =
      adaptive_on && config.adaptive.is_mode == IsMode::kScaledNoise;
  const double nu = config.adaptive.is_noise_scale;
  const double lambda = config.adaptive.is_channel_scale;

  const auto scalar_trial = [&](std::size_t, Rng& rng, McAccumulator& acc) {
    // One workspace per worker thread, reused across every block the
    // thread runs; prepare() re-shapes it (no allocation at steady
    // state) in case the thread last served a different kernel.
    thread_local LinkWorkspace ws;
    kernel.prepare(ws);
    acc.count("bit_errors", kernel.run_block(ws, rng));
    acc.count("bits", bits_per_block);
  };
  const auto batch_trial = [&](std::size_t, std::size_t count, Rng* rngs,
                               McAccumulator& acc) {
    // One hop-batch workspace per worker thread, reused across every
    // group the thread runs (no allocation at steady state).  The
    // waveform probe only exercises the long-haul planes (ws.link).
    thread_local HopBatchWorkspace ws;
    kernel.prepare_batch(ws, width);
    acc.count("bit_errors", kernel.run_block_batch(ws, rngs, count));
    acc.count("bits", bits_per_block * count);
  };
  // The IS trial runs the scalar kernel only: the tilted link has no
  // SIMD batch variant (rare-event points need few blocks by
  // construction, so the batch win is small there).
  const auto is_trial = [&](std::size_t, Rng& rng, McAccumulator& acc) {
    thread_local LinkWorkspace ws;
    kernel.prepare(ws);
    const WaveformBerKernel::IsBlock blk =
        kernel.run_block_is(ws, rng, nu, lambda);
    acc.count("bit_errors", blk.bit_errors);
    acc.count("bits", bits_per_block);
    acc.observe("is_ber", blk.weight * static_cast<double>(blk.bit_errors) /
                              static_cast<double>(bits_per_block));
    acc.observe("is_weight", blk.weight);
    // Error blocks are the only nonzero terms of the estimator: their
    // weight stream is what ESS must watch (a mis-tilt shows up as a
    // few huge-weight errors dominating it, which raw-weight ESS hides
    // behind the harmless weight spread of the error-free majority).
    if (blk.bit_errors > 0) acc.observe("is_err_weight", blk.weight);
  };

  WaveformBerPoint point;
  point.gamma_b_db = gamma_b_db;
  McResult run;
  if (adaptive_on) {
    // Stopping rule: the raw bit-error rate for plain adaptive, the
    // weighted per-block BER stat under IS (the raw counters are tilted
    // there and only serve as diagnostics).
    const StopRule rule = is_on ? StopRule{"is_ber", ""}
                                : StopRule{"bit_errors", "bits"};
    AdaptiveResult ar;
    if (is_on) {
      ar = run_trials_adaptive(config.blocks, mc, config.adaptive, rule,
                               shard_options, is_trial);
    } else if (width > 1) {
      ar = run_trial_batches_adaptive(config.blocks, mc, config.adaptive,
                                      rule, shard_options, width,
                                      batch_trial);
    } else {
      ar = run_trials_adaptive(config.blocks, mc, config.adaptive, rule,
                               shard_options, scalar_trial);
    }
    run = std::move(ar.mc);
    point.trials_budget = ar.trials_budget;
    point.trials_executed = ar.trials_executed;
    point.checkpoints = ar.checkpoints;
    point.target_met = ar.target_met;
    point.rel_ci = std::isfinite(ar.rel_ci) ? ar.rel_ci : 0.0;
  } else {
    run = width > 1 ? run_trial_batches_sharded(config.blocks, mc,
                                                shard_options, width,
                                                batch_trial)
                    : run_trials_sharded(config.blocks, mc, shard_options,
                                         scalar_trial);
    point.trials_budget = config.blocks;
    point.trials_executed = config.blocks;
  }

  point.bits = run.acc.counter("bits");
  point.bit_errors = run.acc.counter("bit_errors");
  point.estimate = run.acc.rate("bit_errors", "bits");
  if (is_on) {
    // Unbiased weighted estimator; the Wilson shape does not apply, so
    // the interval is the normal one around the weighted mean.
    const RunningStats& isb = run.acc.stat("is_ber");
    point.ber = isb.count() > 0 ? isb.mean() : 0.0;
    const double half =
        isb.count() >= 2
            ? confidence_z(config.adaptive.confidence) * isb.std_error()
            : 0.0;
    point.estimate.rate = point.ber;
    point.estimate.wilson_lo = std::max(0.0, point.ber - half);
    point.estimate.wilson_hi = point.ber + half;
    const RunningStats& errw = run.acc.stat("is_err_weight");
    point.ess = ess_from_weights(errw);
    point.err_blocks = errw.count();
    // ESS is a pure function of (seed, config) — deterministic domain.
    obs::MetricRegistry::global().gauge("mc.adaptive.is_ess").set(point.ess);
  } else {
    point.ber = point.bits
                    ? static_cast<double>(point.bit_errors) /
                          static_cast<double>(point.bits)
                    : 0.0;
    if (!adaptive_on) {
      const double rel =
          rate_rel_ci(point.bit_errors, point.bits, confidence_z(0.95));
      point.rel_ci = std::isfinite(rel) ? rel : 0.0;
    }
  }
  // The closed form averages Q over the per-branch SNR of the
  // total-power-normalized code (StbcCode scales by 1/√mt), so the
  // per-branch per-bit SNR it sees is γ_b/mt — the same convention
  // tests/test_stbc.cpp pins against the 2×1 Alamouti curve.
  point.analytic =
      ber_mqam_rayleigh_mimo(config.b, gamma_b / config.mt, config.mt,
                             config.mr);
  point.info = run.info;
  if (obs::enabled() && run.info.wall_s > 0.0) {
    // Per-shape kernel throughput.  Registration here is cold (once per
    // measurement, thousands of blocks each); timing is runtime domain.
    const std::string name = "phy.blocks_per_sec." +
                             std::to_string(config.mt) + "x" +
                             std::to_string(config.mr) + ".b" +
                             std::to_string(config.b);
    obs::MetricRegistry::global()
        .gauge(name, obs::Domain::kRuntime)
        .set(static_cast<double>(point.trials_executed) / run.info.wall_s);
  }
  return point;
}

std::vector<WaveformBerPoint> waveform_ber_curve(
    const WaveformBerConfig& config, const std::vector<double>& gamma_b_db) {
  std::vector<WaveformBerPoint> curve;
  curve.reserve(gamma_b_db.size());
  for (std::size_t i = 0; i < gamma_b_db.size(); ++i) {
    // Each point gets its own stream family so curve points stay
    // independent of the grid shape.
    WaveformBerConfig point_cfg = config;
    point_cfg.seed = config.seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    curve.push_back(measure_waveform_ber(point_cfg, gamma_b_db[i]));
  }
  return curve;
}

}  // namespace comimo
