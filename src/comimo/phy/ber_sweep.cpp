#include "comimo/phy/ber_sweep.h"

#include <cmath>
#include <string>

#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/numeric/cmatrix.h"
#include "comimo/obs/metrics.h"
#include "comimo/phy/ber.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"

namespace comimo {

WaveformBerKernel::WaveformBerKernel(int b, unsigned mt, unsigned mr,
                                     double gamma_b)
    : modem_(make_modulator(b)),
      decoder_(StbcCode::for_antennas(mt)),
      mr_(mr) {
  COMIMO_CHECK(b >= 1 && b <= 8, "b in 1..8");
  COMIMO_CHECK(mt >= 1 && mt <= kMaxStbcTx,
               "mt outside the STBC design range");
  COMIMO_CHECK(mr >= 1, "need a receive antenna");
  const StbcCode& code = decoder_.code();
  bits_per_block_ = code.symbols_per_block() * static_cast<std::size_t>(b);
  // Per-bit received energy γ_b·N0 (unit noise) per unit ‖H‖²_F; the
  // rate-1/2 designs transmit each symbol twice, so divide by the
  // symbol weight — the same bookkeeping as testbed/coop_hop_sim.
  sym_scale_ =
      std::sqrt(static_cast<double>(b) * gamma_b / code.symbol_weight());
}

std::size_t WaveformBerKernel::run_block(LinkWorkspace& ws, Rng& rng) const {
  ws.bits.resize(bits_per_block_);
  for (auto& bit : ws.bits) bit = rng.bernoulli(0.5) ? 1 : 0;
  modem_->modulate_into(ws.bits, ws.symbols);
  for (auto& s : ws.symbols) s *= sym_scale_;
  simulate_block(decoder_, ws, rng);
  for (auto& v : ws.estimates) v /= sym_scale_;
  modem_->demodulate_into(ws.estimates, ws.decoded);
  return count_bit_errors(ws.bits, ws.decoded);
}

WaveformBerPoint measure_waveform_ber(const WaveformBerConfig& config,
                                      double gamma_b_db) {
  COMIMO_CHECK(config.blocks >= 1, "need at least one block");

  const double gamma_b = db_to_linear(gamma_b_db);
  const WaveformBerKernel kernel(config.b, config.mt, config.mr, gamma_b);
  const std::size_t bits_per_block = kernel.bits_per_block();

  McConfig mc;
  mc.seed = config.seed;
  mc.chunk_size = config.chunk_size;
  mc.pool = config.pool;

  const McResult run = run_trials(
      config.blocks, mc, [&](std::size_t, Rng& rng, McAccumulator& acc) {
        // One workspace per worker thread, reused across every block the
        // thread runs; prepare() re-shapes it (no allocation at steady
        // state) in case the thread last served a different kernel.
        thread_local LinkWorkspace ws;
        kernel.prepare(ws);
        acc.count("bit_errors", kernel.run_block(ws, rng));
        acc.count("bits", bits_per_block);
      });

  WaveformBerPoint point;
  point.gamma_b_db = gamma_b_db;
  point.bits = run.acc.counter("bits");
  point.bit_errors = run.acc.counter("bit_errors");
  point.ber = point.bits
                  ? static_cast<double>(point.bit_errors) /
                        static_cast<double>(point.bits)
                  : 0.0;
  point.estimate = run.acc.rate("bit_errors", "bits");
  point.analytic =
      ber_mqam_rayleigh_mimo(config.b, gamma_b, config.mt, config.mr);
  point.info = run.info;
  if (obs::enabled() && run.info.wall_s > 0.0) {
    // Per-shape kernel throughput.  Registration here is cold (once per
    // measurement, thousands of blocks each); timing is runtime domain.
    const std::string name = "phy.blocks_per_sec." +
                             std::to_string(config.mt) + "x" +
                             std::to_string(config.mr) + ".b" +
                             std::to_string(config.b);
    obs::MetricRegistry::global()
        .gauge(name, obs::Domain::kRuntime)
        .set(static_cast<double>(config.blocks) / run.info.wall_s);
  }
  return point;
}

std::vector<WaveformBerPoint> waveform_ber_curve(
    const WaveformBerConfig& config, const std::vector<double>& gamma_b_db) {
  std::vector<WaveformBerPoint> curve;
  curve.reserve(gamma_b_db.size());
  for (std::size_t i = 0; i < gamma_b_db.size(); ++i) {
    // Each point gets its own stream family so curve points stay
    // independent of the grid shape.
    WaveformBerConfig point_cfg = config;
    point_cfg.seed = config.seed + 0x9E3779B97F4A7C15ULL * (i + 1);
    curve.push_back(measure_waveform_ber(point_cfg, gamma_b_db[i]));
  }
  return curve;
}

}  // namespace comimo
