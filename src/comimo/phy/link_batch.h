// Batch-of-blocks arena for the SIMD link kernel.
//
// Where LinkWorkspace holds one STBC block, LinkBatchWorkspace holds W
// independent Monte-Carlo blocks side by side in split-complex SoA
// planes (numeric/simd/simd.h: element e of lane w at plane[e·W + w],
// planes 64-byte aligned) so every arithmetic step of the link — encode,
// propagate, noise add, real-expansion decode, demod distance — runs as
// one vector op over W lanes.  Each lane is bit-identical to running
// the scalar LinkWorkspace path on the same Rng, which is what lets
// WaveformBerKernel::run_block_batch drop in under measure_waveform_ber
// without disturbing a single golden table.
//
// The per-lane pieces that stay scalar on purpose:
//   * RNG draws (bits, channel, noise) — one generator per lane, scalar
//     Box–Muller, so the (seed, trial) stream contract is untouched;
//   * modulation table lookups — exact copies, no arithmetic;
//   * the pivoted gram solve — pivoting is data-dependent per lane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "comimo/numeric/aligned.h"
#include "comimo/phy/link_workspace.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"

namespace comimo {

class Rng;

/// All buffers for W blocks of one simulated STBC link.  Aggregate like
/// LinkWorkspace: configure() shapes every plane with assign(), which
/// reuses capacity, so the steady-state batch loop is allocation-free
/// once the workspace has seen its largest (shape, width).
struct LinkBatchWorkspace {
  // Split-complex SoA planes, elems × width doubles each.
  AlignedVec<double> h_re, h_im;      ///< mr × mt channel draws
  AlignedVec<double> enc_re, enc_im;  ///< T × mt transmitted blocks
  AlignedVec<double> rx_re, rx_im;    ///< T × mr received blocks
  AlignedVec<double> sym_re, sym_im;  ///< K symbols to transmit
  AlignedVec<double> est_re, est_im;  ///< K decoded soft estimates
  // Real-expansion decode planes (2TMr × 2K design matrix and friends).
  AlignedVec<double> f;     ///< rows × cols plane
  AlignedVec<double> y;     ///< rows plane
  AlignedVec<double> gram;  ///< cols × cols plane (FᵀF)
  AlignedVec<double> rhs;   ///< cols plane (Fᵀy)
  std::vector<std::uint32_t> labels;  ///< K × width demod labels
  // Lane-major bit staging: lane w's block occupies
  // [w·bits_per_block, (w+1)·bits_per_block).
  BitVec bits;
  BitVec decoded;
  StbcDecodeScratch solve_scratch;  ///< per-lane gram solve
  LinkWorkspace lane_ws;  ///< scalar path for tails / symbol staging
  std::size_t width = 0;  ///< lanes currently configured

  /// Shapes every plane for `code` over an mr-antenna receiver, `width`
  /// lanes wide.  Idempotent and cheap when nothing changed.
  void configure(const StbcCode& code, std::size_t mr, std::size_t width,
                 std::size_t bits_per_block);
};

}  // namespace comimo
