#include "comimo/phy/ber.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/special.h"

namespace comimo {

double ber_bpsk_awgn(double gamma_b) noexcept {
  return q_function(std::sqrt(2.0 * std::max(0.0, gamma_b)));
}

double mqam_coefficient(int b) {
  COMIMO_CHECK(b >= 1, "b must be >= 1");
  if (b == 1) return 1.0;
  return 4.0 / static_cast<double>(b) *
         (1.0 - std::pow(2.0, -static_cast<double>(b) / 2.0));
}

double mqam_snr_factor(int b) {
  COMIMO_CHECK(b >= 1, "b must be >= 1");
  if (b == 1) return 2.0;
  const double m = std::pow(2.0, b);
  return 3.0 * static_cast<double>(b) / (m - 1.0);
}

double ber_mqam_awgn(int b, double gamma_b) {
  COMIMO_CHECK(gamma_b >= 0.0, "gamma_b must be >= 0");
  return mqam_coefficient(b) *
         q_function(std::sqrt(mqam_snr_factor(b) * gamma_b));
}

double ber_bpsk_rayleigh(double gamma_b) noexcept {
  const double g = std::max(0.0, gamma_b);
  return 0.5 * (1.0 - std::sqrt(g / (1.0 + g)));
}

double ber_mqam_rayleigh_mimo(int b, double gamma_b, unsigned mt,
                              unsigned mr) {
  COMIMO_CHECK(gamma_b >= 0.0, "gamma_b must be >= 0");
  COMIMO_CHECK(mt >= 1 && mr >= 1, "antenna counts must be >= 1");
  // E_H[ A·Q(√(B·γb·‖H‖²_F)) ] with ‖H‖²_F ~ Gamma(mt·mr, 1):
  // write the argument as √(2·g·x) with g = B·γb/2.
  const double g = mqam_snr_factor(b) * gamma_b / 2.0;
  const double p = mqam_coefficient(b) * avg_q_over_gamma(g, mt * mr);
  // The approximation's coefficient can push the value above the
  // trivially valid ceiling at very low SNR; clamp to a probability.
  return p > 1.0 ? 1.0 : p;
}

double ber_gmsk_awgn_approx(double gamma_b, double eta) noexcept {
  return q_function(std::sqrt(2.0 * eta * std::max(0.0, gamma_b)));
}

double per_from_ber(double ber, double bits) noexcept {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  // log1p keeps precision for tiny BER and long packets.
  return 1.0 - std::exp(bits * std::log1p(-ber));
}

}  // namespace comimo
