// Waveform-level Monte-Carlo BER curves on the mc/ sweep engine.
//
// Each trial is one orthogonal-STBC block over a fresh i.i.d. Rayleigh
// mt×mr channel: MQAM symbols scaled to the requested per-branch
// per-bit SNR, exact ML decode, bit errors counted.  The measured curve
// cross-checks the closed form of phy/ber.h (eqs. (5)–(6)) — and the
// trial throughput of this sweep is what bench/mc_engine_speedup uses
// to measure multi-core scaling, because every trial is independent by
// construction (randomness derived from (seed, trial index) only).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "comimo/mc/adaptive.h"
#include "comimo/mc/engine.h"
#include "comimo/numeric/stats.h"
#include "comimo/phy/link_batch.h"
#include "comimo/phy/link_workspace.h"

namespace comimo {

struct HopBatchWorkspace;

struct WaveformBerConfig {
  int b = 2;            ///< bits per symbol (1..8)
  unsigned mt = 2;      ///< cooperative transmit antennas (1..4)
  unsigned mr = 2;      ///< receive antennas
  std::size_t blocks = 4000;  ///< STBC blocks (= engine trials) per point
  std::uint64_t seed = 1;
  std::size_t chunk_size = 0;  ///< engine shard size; 0 = auto
  ThreadPool* pool = nullptr;  ///< null = shared pool
  /// Worker processes: > 1 runs the measurement through the
  /// multi-process sharding driver (mc/sharded.h); bit-identical to the
  /// single-process run at any count.
  std::size_t shards = 1;
  /// Precision-targeted stopping (mc/adaptive.h).  target_rel_ci > 0
  /// runs the measurement in checkpoint rounds against `blocks` as the
  /// trial budget, stopping once the BER's relative CI half-width hits
  /// the target; is_mode == IsMode::kScaledNoise additionally tilts the
  /// noise (CN(0, ν)) and/or the fading (CN(0, 1/λ)) with per-block
  /// likelihood weights, so deep-waterfall points resolve with orders
  /// of magnitude fewer blocks (tilt the CHANNEL for high-SNR diversity
  /// links — see IsMode).  Results stay bit-identical at any thread
  /// count and across `shards` for a fixed checkpoint schedule.
  AdaptiveConfig adaptive;
};

struct WaveformBerPoint {
  double gamma_b_db = 0.0;  ///< per-branch per-bit SNR γ_b [dB]
  std::size_t bits = 0;
  std::size_t bit_errors = 0;
  double ber = 0.0;
  RateEstimate estimate;  ///< Wilson 95% interval
  double analytic = 0.0;  ///< ber_mqam_rayleigh_mimo at the same point
  McRunInfo info;
  /// Adaptive-stopping record (trials_executed == blocks and
  /// target_met == false on the fixed-trial path).
  std::size_t trials_budget = 0;
  std::size_t trials_executed = 0;
  std::size_t checkpoints = 0;
  bool target_met = false;
  /// Relative CI half-width of the stopping statistic at the end of the
  /// run (also filled on the fixed path, from the rate interval).
  double rel_ci = 0.0;
  /// Importance-sampling effective sample size (Σw)²/Σw² over the
  /// weights of ERROR-carrying blocks; 0 without IS.  Error blocks are
  /// the only terms of the estimator, so this is the quantity that
  /// collapses when a mis-tilt lets a few huge-weight errors dominate —
  /// raw-weight ESS is meaningless under a proposal that deliberately
  /// inflates a rare region.
  double ess = 0.0;
  /// Number of error-carrying blocks (the denominator ess is relative
  /// to); 0 without IS.
  std::size_t err_blocks = 0;
};

/// The per-block waveform BER trial packaged as a reusable kernel.
/// Construction fixes (b, mt, mr, γ_b) and builds the modem and ML
/// decoder once; run_block() then executes one STBC block entirely on a
/// caller-owned LinkWorkspace and returns its bit-error count.  A
/// workspace reused across blocks makes the steady-state loop
/// allocation-free (bench/perf_kernels counts this).  Bit-identical to
/// the historical per-block allocating path for the same Rng stream.
class WaveformBerKernel {
 public:
  /// gamma_b is the *linear* per-branch per-bit SNR.
  WaveformBerKernel(int b, unsigned mt, unsigned mr, double gamma_b);

  /// Shapes `ws` for this kernel; call before run_block() whenever the
  /// workspace may have last served a different shape.
  void prepare(LinkWorkspace& ws) const { ws.configure(decoder_.code(), mr_); }

  /// One block: draw source bits, modulate, simulate the link, decode,
  /// count errors.  The source/decoded bits stay in ws.bits/ws.decoded.
  [[nodiscard]] std::size_t run_block(LinkWorkspace& ws, Rng& rng) const;

  /// Importance-sampled block: identical to run_block except the AWGN
  /// is drawn from CN(0, noise_scale) and the channel from
  /// CN(0, 1/channel_scale).  Returns the raw (tilted) bit-error count
  /// plus the block's likelihood weight w = f/g =
  ///   ν^N·exp(−(1 − 1/ν)·Σ|n|²) · λ^(−Nh)·exp((λ − 1)·Σ|h|²)
  /// over the N = T·mr noise samples and Nh = mt·mr channel entries;
  /// the unbiased BER estimator is the mean of w·errors/bits_per_block
  /// across blocks.  Both scales at 1 give w == 1 and run_block's bits.
  struct IsBlock {
    std::size_t bit_errors = 0;
    double weight = 1.0;
  };
  [[nodiscard]] IsBlock run_block_is(LinkWorkspace& ws, Rng& rng,
                                     double noise_scale,
                                     double channel_scale) const;

  /// Shapes `ws` for this kernel at `width` lanes (normally
  /// simd::batch_width()); the batch analogue of prepare().
  void prepare_batch(LinkBatchWorkspace& ws, std::size_t width) const;

  /// `count` blocks at once through the SIMD batch path, one Rng per
  /// lane (rngs[0..count)).  Returns the total bit-error count; per-lane
  /// source/decoded bits stay lane-major in ws.bits/ws.decoded.  Lane w
  /// is bit-identical to run_block(ws', rngs[w]) on a fresh workspace —
  /// a count below the configured width (the tail of a Monte-Carlo
  /// chunk) falls back to exactly that scalar loop.
  [[nodiscard]] std::size_t run_block_batch(LinkBatchWorkspace& ws,
                                            Rng* rngs,
                                            std::size_t count) const;

  /// Hop-workspace overloads: the link kernel runs on the embedded link
  /// planes of a HopBatchWorkspace, so call sites that sometimes run a
  /// full hop and sometimes a bare link (underlay/overlay/resilience
  /// measurements) share one per-thread arena type.
  void prepare_batch(HopBatchWorkspace& ws, std::size_t width) const;
  [[nodiscard]] std::size_t run_block_batch(HopBatchWorkspace& ws, Rng* rngs,
                                            std::size_t count) const;

  [[nodiscard]] std::size_t bits_per_block() const noexcept {
    return bits_per_block_;
  }
  [[nodiscard]] const StbcDecoder& decoder() const noexcept {
    return decoder_;
  }

 private:
  std::unique_ptr<Modulator> modem_;
  StbcDecoder decoder_;
  unsigned mr_;
  std::size_t bits_per_block_;
  double sym_scale_;
};

/// One point of the curve.  γ_b is the paper's per-branch per-bit SNR
/// per unit ‖H‖²_F (γ_b = ē_b/(N0·mt)).
[[nodiscard]] WaveformBerPoint measure_waveform_ber(
    const WaveformBerConfig& config, double gamma_b_db);

/// The full curve over a γ_b grid.
[[nodiscard]] std::vector<WaveformBerPoint> waveform_ber_curve(
    const WaveformBerConfig& config, const std::vector<double>& gamma_b_db);

}  // namespace comimo
