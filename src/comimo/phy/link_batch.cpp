#include "comimo/phy/link_batch.h"

#include "comimo/common/error.h"

namespace comimo {

void LinkBatchWorkspace::configure(const StbcCode& code, std::size_t mr,
                                   std::size_t w, std::size_t bits_per_block) {
  COMIMO_CHECK(w >= 1, "need at least one lane");
  COMIMO_CHECK(mr >= 1, "need a receive antenna");
  const std::size_t mt = code.num_tx();
  const std::size_t tt = code.block_length();
  const std::size_t kk = code.symbols_per_block();
  const std::size_t rows = 2 * tt * mr;
  const std::size_t cols = 2 * kk;
  width = w;
  h_re.assign(mr * mt * w, 0.0);
  h_im.assign(mr * mt * w, 0.0);
  enc_re.assign(tt * mt * w, 0.0);
  enc_im.assign(tt * mt * w, 0.0);
  rx_re.assign(tt * mr * w, 0.0);
  rx_im.assign(tt * mr * w, 0.0);
  sym_re.assign(kk * w, 0.0);
  sym_im.assign(kk * w, 0.0);
  est_re.assign(kk * w, 0.0);
  est_im.assign(kk * w, 0.0);
  f.assign(rows * cols * w, 0.0);
  y.assign(rows * w, 0.0);
  gram.assign(cols * cols * w, 0.0);
  rhs.assign(cols * w, 0.0);
  labels.assign(kk * w, 0);
  bits.assign(bits_per_block * w, 0);
  decoded.assign(bits_per_block * w, 0);
  lane_ws.configure(code, mr);
}

}  // namespace comimo
