// Diversity combining at a single receiver.
//
// The paper's USRP overlay experiments use *equal gain combination*
// (§6.4); MRC and selection combining are provided for comparison and
// for the ablation benches.
#pragma once

#include <span>
#include <vector>

#include "comimo/numeric/cmatrix.h"

namespace comimo {

enum class CombinerKind { kEqualGain, kMaximalRatio, kSelection };

/// Combines per-branch observations r_j = h_j·s + n_j of the same symbol
/// stream into one stream.  `branches` is indexed [branch][symbol];
/// `gains` holds the per-branch channel coefficients h_j (one per branch,
/// block-constant).  Returned samples are normalized so that the noise-
/// free output equals s.
[[nodiscard]] std::vector<cplx> combine(
    CombinerKind kind, const std::vector<std::vector<cplx>>& branches,
    std::span<const cplx> gains);

/// Post-combining SNR multiplier relative to a single unit-gain branch:
///  MRC: Σ|h_j|²;  EGC: (Σ|h_j|)²/m;  SC: max|h_j|².
[[nodiscard]] double combining_snr_gain(CombinerKind kind,
                                        std::span<const cplx> gains);

}  // namespace comimo
