// Per-chunk arena for the batched link kernel.
//
// The per-block PHY path (draw channel → encode → propagate → add noise
// → ML decode) used to allocate every buffer per block.  A LinkWorkspace
// owns all of those buffers once per Monte-Carlo chunk; configure()
// shapes them with assign()/resize(), which reuse capacity, so the
// steady-state loop performs zero heap allocations once the workspace
// has seen its largest shape.  Every buffer is fully overwritten per
// block — reuse can never read stale state from a previous block, which
// tests/test_link_workspace.cpp checks across varying antenna counts.
//
// simulate_block() is the bit-identical in-place composition of the
// allocating path in phy/ber_sweep.cpp: the RNG draw order (channel
// row-major, then noise row-major) and the accumulation order of the
// propagation sum are preserved exactly, so golden BER tables from the
// allocating era keep matching.
#pragma once

#include <cstddef>
#include <vector>

#include "comimo/numeric/cmatrix.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"

namespace comimo {

class Rng;

/// All per-block buffers of one simulated STBC link, reusable across
/// blocks and across (mt, mr) shapes.  Plain aggregate: callers fill
/// `symbols` (and optionally the bit staging areas), call
/// simulate_block(), and read `estimates` back.
struct LinkWorkspace {
  CMatrix h;         ///< mr × mt channel draw
  CMatrix encoded;   ///< T × mt transmitted block
  CMatrix received;  ///< T × mr received block
  std::vector<cplx> symbols;    ///< K symbols to transmit (caller-filled)
  std::vector<cplx> estimates;  ///< K decoded soft estimates
  BitVec bits;     ///< staging for the source bits of a block
  BitVec decoded;  ///< staging for demodulated bits
  StbcDecodeScratch decode_scratch;

  /// Shapes every buffer for `code` over an mr-antenna receiver.
  /// Idempotent and cheap when the shape is unchanged; growing to a new
  /// largest shape is the only point that may allocate.
  void configure(const StbcCode& code, std::size_t mr);
};

/// Runs one block through the link: fresh i.i.d. Rayleigh channel into
/// ws.h, ws.symbols encoded into ws.encoded, propagated into
/// ws.received, unit-variance AWGN added, ML decode into ws.estimates.
/// ws must be configure()d for decoder.code() and the intended mr
/// (ws.h's row count).  Consumes RNG draws in the exact order of the
/// historical allocating path.
void simulate_block(const StbcDecoder& decoder, LinkWorkspace& ws, Rng& rng);

/// Sample-energy side channel of one tilted block draw: what the
/// importance-sampling caller needs to form the likelihood ratio.
struct TiltedBlockEnergy {
  double channel_sq = 0.0;  ///< Σ|h|² over the drawn channel entries
  double noise_sq = 0.0;    ///< Σ|n|² over the drawn noise samples
};

/// simulate_block with the Rayleigh stage drawn from
/// CN(0, channel_variance) and the AWGN stage from CN(0, noise_variance)
/// instead of CN(0, 1) — the importance-sampling proposals of the
/// adaptive rare-event tier (mc/adaptive.h).  channel_variance < 1
/// over-samples deep fades (the event that dominates high-SNR errors in
/// a diversity link); noise_variance > 1 over-samples noise bursts.
/// Returns the per-block sample energies the caller needs for the
/// likelihood ratio f/g.  Consumes exactly the same RNG draws in the
/// same order as simulate_block (the counter-based streams make the raw
/// draws identical; only the scaling differs), and unit variances
/// reproduce its bits exactly.
TiltedBlockEnergy simulate_block_tilted(const StbcDecoder& decoder,
                                        LinkWorkspace& ws, Rng& rng,
                                        double noise_variance,
                                        double channel_variance);

}  // namespace comimo
