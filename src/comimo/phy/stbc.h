// Orthogonal space-time block codes.
//
// §2.3 fixes the MIMO code system to space-time block codes "such as the
// Alamouti code".  We implement the complex orthogonal designs used with
// 2/3/4 cooperating transmitters:
//   * G2  — Alamouti, rate 1, T = 2, K = 2;
//   * G3  — Tarokh et al., rate 1/2, T = 8, K = 4, 3 antennas;
//   * G4  — Tarokh et al., rate 1/2, T = 8, K = 4, 4 antennas.
//
// A code is stored as the pair of coefficient tensors (a, b) with
//   C(t, i) = Σ_k a[t][i][k]·s_k + b[t][i][k]·conj(s_k),
// and decoding is exact ML for any orthogonal design: the real expansion
// of the received block is linear in [Re s; Im s], and the least-squares
// solution decouples because the equivalent real channel has orthogonal
// columns of squared norm ‖H‖²_F (times the code's power scale) — the
// diversity statistic the energy model's eq. (5) relies on.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "comimo/numeric/cmatrix.h"

namespace comimo {

class StbcCode {
 public:
  /// The Alamouti code (2 Tx).
  [[nodiscard]] static StbcCode alamouti();
  /// Tarokh's rate-1/2 design for 3 Tx.
  [[nodiscard]] static StbcCode g3();
  /// Tarokh's rate-1/2 design for 4 Tx.
  [[nodiscard]] static StbcCode g4();
  /// Degenerate 1-Tx "code" (K = T = 1) so SISO/SIMO links share the
  /// code path.
  [[nodiscard]] static StbcCode siso();
  /// Picks the design for `num_tx` in 1..4.
  [[nodiscard]] static StbcCode for_antennas(std::size_t num_tx);

  [[nodiscard]] std::size_t num_tx() const noexcept { return num_tx_; }
  [[nodiscard]] std::size_t block_length() const noexcept { return t_; }
  [[nodiscard]] std::size_t symbols_per_block() const noexcept { return k_; }
  [[nodiscard]] double rate() const noexcept {
    return static_cast<double>(k_) / static_cast<double>(t_);
  }
  /// Per-antenna amplitude scale (1/√num_tx keeps total radiated energy
  /// equal to the uncoded single-antenna case).
  [[nodiscard]] double power_scale() const noexcept { return power_scale_; }

  /// Number of times each symbol is transmitted per antenna column
  /// (1 for SISO/Alamouti; 2 for the rate-1/2 G3/G4 designs, whose
  /// second half repeats the conjugated block).  Per-bit energy
  /// bookkeeping must divide the per-transmission energy by this.
  [[nodiscard]] double symbol_weight() const;

  /// a/b coefficient of symbol k at time t, antenna i.
  [[nodiscard]] cplx coeff_a(std::size_t t, std::size_t i,
                             std::size_t k) const;
  [[nodiscard]] cplx coeff_b(std::size_t t, std::size_t i,
                             std::size_t k) const;

  /// Flat coefficient tensors in idx(t, i, k) = (t·num_tx + i)·K + k
  /// order — the layout the batched SIMD kernels walk directly.
  [[nodiscard]] std::span<const cplx> coeff_a_flat() const noexcept {
    return a_;
  }
  [[nodiscard]] std::span<const cplx> coeff_b_flat() const noexcept {
    return b_;
  }

  /// Encodes K symbols into the T × num_tx transmission matrix
  /// (row = time slot, column = antenna), including the power scale.
  [[nodiscard]] CMatrix encode(std::span<const cplx> symbols) const;

  /// Allocation-free encode: writes the T × num_tx block into `out`
  /// (which must already have that shape).  Every element is written,
  /// so a reused workspace buffer cannot leak a previous block.
  /// Bit-identical to encode().
  void encode_into(std::span<const cplx> symbols, CMatrixView out) const;

  /// Verifies the orthogonality property  C^H C = (Σ|s_k|²)·I  up to
  /// tolerance, for property tests.
  [[nodiscard]] bool is_orthogonal_design(double tol = 1e-9) const;

 private:
  StbcCode(std::size_t num_tx, std::size_t t, std::size_t k);
  void set_a(std::size_t t, std::size_t i, std::size_t k, cplx v);
  void set_b(std::size_t t, std::size_t i, std::size_t k, cplx v);
  [[nodiscard]] std::size_t idx(std::size_t t, std::size_t i,
                                std::size_t k) const noexcept {
    return (t * num_tx_ + i) * k_ + k;
  }

  std::size_t num_tx_;
  std::size_t t_;
  std::size_t k_;
  double power_scale_;
  std::vector<cplx> a_;
  std::vector<cplx> b_;
};

/// Largest transmitter count an orthogonal design exists for here.
inline constexpr std::size_t kMaxStbcTx = 4;

/// Clamps a requested cooperator count to the supported code range, so
/// oversized clusters fall back to the G4 design instead of throwing.
[[nodiscard]] constexpr std::size_t stbc_supported_tx(
    std::size_t num_tx) noexcept {
  return num_tx < kMaxStbcTx ? num_tx : kMaxStbcTx;
}

/// One step down the resilience fallback ladder G4 → G3 → Alamouti →
/// SISO: the code the hop degrades to when a cooperating transmitter
/// drops out mid-route.  SISO (1) is the floor and maps to itself.
[[nodiscard]] constexpr std::size_t stbc_degraded_tx(
    std::size_t num_tx) noexcept {
  const std::size_t clamped = stbc_supported_tx(num_tx);
  return clamped > 1 ? clamped - 1 : 1;
}

/// Reusable scratch for StbcDecoder::decode_into: the real-expansion
/// design matrix, the normal equations, and the elimination workspace.
/// All buffers are assign()-ed per decode, so one scratch serves blocks
/// of any (and varying) antenna configuration, allocation-free once it
/// has seen the largest shape.
struct StbcDecodeScratch {
  std::vector<double> f;  ///< 2TMr × 2K real design matrix
  std::vector<double> y;  ///< 2TMr real received vector
  CMatrix gram;           ///< F^T F (2K × 2K)
  std::vector<cplx> rhs;  ///< F^T y
  std::vector<cplx> x;    ///< solution of the normal equations
  std::vector<cplx> solve_work;  ///< elimination copy inside solve_into
};

/// ML decoder for an orthogonal design over an mr-antenna receiver.
class StbcDecoder {
 public:
  explicit StbcDecoder(StbcCode code);

  /// Decodes one block.
  ///   h: mr × num_tx channel matrix (assumed known, as in the paper);
  ///   received: T × mr matrix of received samples.
  /// Returns K soft symbol estimates (scaled so that, noise-free,
  /// estimates equal the transmitted symbols).
  [[nodiscard]] std::vector<cplx> decode(const CMatrix& h,
                                         const CMatrix& received) const;

  /// Allocation-free decode: the K symbol estimates land in
  /// `out_symbols` (size K) and all intermediates live in `scratch`.
  /// Bit-identical to decode(); shape checks are debug-only (the
  /// allocating wrapper keeps the throwing checks).
  void decode_into(ConstCMatrixView h, ConstCMatrixView received,
                   std::span<cplx> out_symbols,
                   StbcDecodeScratch& scratch) const;

  /// Effective post-combining amplitude gain for channel h — equal to
  /// power_scale·‖H‖²_F for orthogonal designs; exposed for tests and
  /// for SNR bookkeeping.
  [[nodiscard]] double combining_gain(const CMatrix& h) const;

  [[nodiscard]] const StbcCode& code() const noexcept { return code_; }

 private:
  StbcCode code_;
};

}  // namespace comimo
