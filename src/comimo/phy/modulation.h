// Linear memoryless modulation: BPSK and Gray-coded rectangular M-QAM.
//
// The paper's variable-rate system picks a constellation size b (bits per
// symbol) per link; the energy model treats b analytically while the
// testbed modulates actual samples.  Constellations are normalized to
// unit average symbol energy.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "comimo/numeric/cmatrix.h"

namespace comimo {

/// Bits are carried as one bit per byte (0/1) for simplicity; packing
/// helpers live in phy/detector.h.
using BitVec = std::vector<std::uint8_t>;

/// The BPSK hard-decision sign rule: negative real part → bit 1, with
/// +0.0/−0.0 and the boundary both mapping to bit 0 (strict <).  Every
/// BPSK decode — the scalar Modulator, the batch link kernel, and the
/// hop batch — must share this helper so the tie semantics cannot
/// drift between paths.
[[nodiscard]] constexpr std::uint8_t bpsk_hard_bit(double re) noexcept {
  return re < 0.0 ? std::uint8_t{1} : std::uint8_t{0};
}

class Modulator {
 public:
  virtual ~Modulator() = default;

  [[nodiscard]] virtual int bits_per_symbol() const noexcept = 0;

  /// Maps bits into `out` (resized to bits.size() / bits_per_symbol());
  /// the bit count must be a multiple of bits_per_symbol().  Repeated
  /// calls at the same size reuse the vector's capacity — the
  /// workspace-friendly primitive the allocating wrapper is built on.
  virtual void modulate_into(std::span<const std::uint8_t> bits,
                             std::vector<cplx>& out) const = 0;

  /// Coherent minimum-distance hard demapping into `out` (channel
  /// assumed equalized); `out` is overwritten, capacity reused.
  virtual void demodulate_into(std::span<const cplx> symbols,
                               BitVec& out) const = 0;

  /// Allocating convenience wrappers over the *_into primitives.
  [[nodiscard]] std::vector<cplx> modulate(
      std::span<const std::uint8_t> bits) const {
    std::vector<cplx> out;
    modulate_into(bits, out);
    return out;
  }
  [[nodiscard]] BitVec demodulate(std::span<const cplx> symbols) const {
    BitVec out;
    demodulate_into(symbols, out);
    return out;
  }

  /// The constellation points in bit-label order (index = Gray-coded
  /// integer formed by the symbol's bits, MSB first).
  [[nodiscard]] virtual const std::vector<cplx>& constellation()
      const noexcept = 0;
};

/// Antipodal BPSK: bit 0 → +1, bit 1 → −1.
class BpskModulator final : public Modulator {
 public:
  BpskModulator();

  [[nodiscard]] int bits_per_symbol() const noexcept override { return 1; }
  void modulate_into(std::span<const std::uint8_t> bits,
                     std::vector<cplx>& out) const override;
  void demodulate_into(std::span<const cplx> symbols,
                       BitVec& out) const override;
  [[nodiscard]] const std::vector<cplx>& constellation()
      const noexcept override {
    return points_;
  }

 private:
  std::vector<cplx> points_;
};

/// Gray-coded rectangular 2^b-QAM.  Even b gives a square constellation;
/// odd b uses a 2^⌈b/2⌉ × 2^⌊b/2⌋ rectangle (b = 1 degenerates to BPSK
/// geometry).  Supported b: 1..8 for waveform work.
class QamModulator final : public Modulator {
 public:
  explicit QamModulator(int bits_per_symbol);

  [[nodiscard]] int bits_per_symbol() const noexcept override { return b_; }
  void modulate_into(std::span<const std::uint8_t> bits,
                     std::vector<cplx>& out) const override;
  void demodulate_into(std::span<const cplx> symbols,
                       BitVec& out) const override;
  [[nodiscard]] const std::vector<cplx>& constellation()
      const noexcept override {
    return points_;
  }

 private:
  [[nodiscard]] std::size_t nearest_point(cplx r) const;

  int b_;
  int bi_;  // bits on the in-phase axis
  int bq_;  // bits on the quadrature axis
  std::vector<cplx> points_;
};

/// Factory: BPSK for b == 1, QAM otherwise.
[[nodiscard]] std::unique_ptr<Modulator> make_modulator(int bits_per_symbol);

/// Gray code of i.
[[nodiscard]] constexpr unsigned gray_encode(unsigned i) noexcept {
  return i ^ (i >> 1);
}
/// Inverse Gray code.
[[nodiscard]] unsigned gray_decode(unsigned g) noexcept;

}  // namespace comimo
