// Batch-of-blocks arena for an entire cooperative hop.
//
// LinkBatchWorkspace batches the innermost STBC link W Monte-Carlo
// realizations wide; HopBatchWorkspace generalizes that to the whole
// Algorithm-2 hop (testbed/coop_hop_sim.h): the intra-cluster broadcast
// beliefs, the per-antenna long-haul encode (each virtual antenna
// transmits its *own* possibly mis-decoded bit stream), the collection
// noise added by analog forwarding, and the lane-major decoded output.
// The embedded `link` member carries the long-haul planes, so the plain
// link kernel (WaveformBerKernel) runs on a HopBatchWorkspace unchanged
// — which is how the underlay/overlay/resilience measurement call sites
// all share one per-thread arena type.
//
// Layout contracts (same as link_batch.h):
//   * SoA planes: element e of lane w at plane[e·W + w], 64-byte base;
//   * lane-major byte staging: lane w's block at [w·bits_per_block, …);
//   * belief bits add an antenna axis: antenna i, lane w at
//     [(i·W + w)·bits_per_block, …) — lane-contiguous so the scalar
//     modulator can take a slice directly.
//
// configure_*() shape with assign(), which reuses capacity, so the
// steady-state hop loop is allocation-free once the workspace has seen
// its largest (code, width) — including alternation between the full
// and ladder-degraded STBC shapes.
#pragma once

#include <cstddef>
#include <vector>

#include "comimo/numeric/aligned.h"
#include "comimo/phy/link_batch.h"
#include "comimo/phy/modulation.h"
#include "comimo/phy/stbc.h"

namespace comimo {

/// All buffers for W blocks of one simulated cooperative hop.
struct HopBatchWorkspace {
  /// Long-haul leg planes (encode/fade/decode), shaped per active
  /// sub-code by configure_long_haul.
  LinkBatchWorkspace link;

  // Per-antenna belief symbol planes for the long-haul encode:
  // mt_use · K_use elements, [(i·K + k)·W + w].
  AlignedVec<double> ant_sym_re, ant_sym_im;

  /// Broadcast beliefs, antenna-major then lane-major:
  /// antenna i of lane w at [(i·W + w)·bits_per_block, …).
  BitVec belief_bits;
  /// Hop output, lane-major: lane w at [w·bits_per_block, …).
  BitVec decoded_all;

  // Scalar lane staging (broadcast leg and the lane-serial fallback).
  std::vector<cplx> lane_syms;  ///< head-broadcast symbols
  std::vector<cplx> lane_rx;    ///< noisy local copy per co-transmitter
  BitVec lane_decoded;          ///< scalar demod staging
  std::vector<std::vector<cplx>> lane_ant_syms;  ///< serial-path symbols

  std::size_t width = 0;           ///< lanes currently configured
  std::size_t mt = 0;              ///< full-code virtual antennas
  std::size_t bits_per_block = 0;  ///< full-code payload bits per block

  /// Shapes the hop-level staging for `code` (the full design) over an
  /// mr-antenna collection cluster, `width` lanes wide.  Idempotent and
  /// cheap when nothing changed.
  void configure_hop(const StbcCode& code, std::size_t mr, std::size_t width,
                     std::size_t bits_per_block);

  /// Shapes the long-haul planes for one (possibly ladder-degraded)
  /// sub-code: the embedded link workspace plus the per-antenna symbol
  /// planes.  Called per long-haul pass; `sub_bits` is the sub-block
  /// payload size.
  void configure_long_haul(const StbcCode& code_use, std::size_t mr,
                           std::size_t width, std::size_t sub_bits);

  /// Antenna i / lane w belief slice (bits_per_block bytes).
  [[nodiscard]] std::uint8_t* belief(std::size_t antenna,
                                     std::size_t lane) noexcept {
    return belief_bits.data() + (antenna * width + lane) * bits_per_block;
  }
  /// Lane w decoded slice (bits_per_block bytes).
  [[nodiscard]] std::uint8_t* decoded_lane(std::size_t lane) noexcept {
    return decoded_all.data() + lane * bits_per_block;
  }
};

}  // namespace comimo
