#include "comimo/phy/modulation.h"

#include <cmath>
#include <limits>

#include "comimo/common/error.h"
#include "comimo/numeric/simd/simd.h"

namespace comimo {

unsigned gray_decode(unsigned g) noexcept {
  unsigned i = g;
  for (unsigned shift = 1; shift < sizeof(unsigned) * 8; shift <<= 1) {
    i ^= i >> shift;
  }
  return i;
}

BpskModulator::BpskModulator() : points_{cplx{1.0, 0.0}, cplx{-1.0, 0.0}} {}

void BpskModulator::modulate_into(std::span<const std::uint8_t> bits,
                                  std::vector<cplx>& out) const {
  out.resize(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    COMIMO_DCHECK(bits[i] <= 1, "bits must be 0/1");
    out[i] = points_[bits[i]];
  }
}

void BpskModulator::demodulate_into(std::span<const cplx> symbols,
                                    BitVec& out) const {
  out.resize(symbols.size());
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    out[i] = bpsk_hard_bit(symbols[i].real());
  }
}

namespace {
/// Gray-labelled PAM levels for `bits` bits: level index l (0..2^bits-1)
/// carries the Gray code of l, amplitude 2l - (M-1).
std::vector<double> pam_levels(int bits) {
  const int m = 1 << bits;
  std::vector<double> amp(static_cast<std::size_t>(m));
  for (int l = 0; l < m; ++l) {
    amp[static_cast<std::size_t>(l)] = static_cast<double>(2 * l - (m - 1));
  }
  return amp;
}
}  // namespace

QamModulator::QamModulator(int bits_per_symbol) : b_(bits_per_symbol) {
  COMIMO_CHECK(b_ >= 1 && b_ <= 8, "QamModulator supports b in 1..8");
  bi_ = (b_ + 1) / 2;
  bq_ = b_ / 2;
  const int mi = 1 << bi_;
  const int mq = 1 << bq_;
  const std::vector<double> ai = pam_levels(bi_);
  const std::vector<double> aq = bq_ > 0 ? pam_levels(bq_)
                                         : std::vector<double>{0.0};

  // Average energy of the unnormalized grid.
  double energy = 0.0;
  points_.resize(static_cast<std::size_t>(1) << b_);
  for (int gi = 0; gi < mi; ++gi) {
    for (int gq = 0; gq < mq; ++gq) {
      // The symbol label is (i-bits, q-bits); each axis is Gray mapped so
      // adjacent amplitudes differ in one bit.
      const unsigned label =
          (gray_encode(static_cast<unsigned>(gi)) << bq_) |
          gray_encode(static_cast<unsigned>(gq));
      const cplx p{ai[static_cast<std::size_t>(gi)],
                   bq_ > 0 ? aq[static_cast<std::size_t>(gq)] : 0.0};
      points_[label] = p;
      energy += std::norm(p);
    }
  }
  energy /= static_cast<double>(points_.size());
  const double scale = 1.0 / std::sqrt(energy);
  for (auto& p : points_) p *= scale;
}

void QamModulator::modulate_into(std::span<const std::uint8_t> bits,
                                 std::vector<cplx>& out) const {
  COMIMO_CHECK(bits.size() % static_cast<std::size_t>(b_) == 0,
               "bit count must be a multiple of bits_per_symbol");
  out.resize(bits.size() / static_cast<std::size_t>(b_));
  std::size_t s = 0;
  for (std::size_t i = 0; i < bits.size(); i += static_cast<std::size_t>(b_)) {
    unsigned label = 0;
    for (int k = 0; k < b_; ++k) {
      COMIMO_DCHECK(bits[i + static_cast<std::size_t>(k)] <= 1,
                    "bits must be 0/1");
      label = (label << 1) | bits[i + static_cast<std::size_t>(k)];
    }
    out[s++] = points_[label];
  }
}

std::size_t QamModulator::nearest_point(cplx r) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const double d = std::norm(r - points_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

void QamModulator::demodulate_into(std::span<const cplx> symbols,
                                   BitVec& out) const {
  out.resize(symbols.size() * static_cast<std::size_t>(b_));
  std::size_t w = 0;
  std::size_t i = 0;
  // The distance argmin is the demod hot loop, and consecutive symbols
  // are independent — so treat W symbols as SIMD lanes, staged through
  // aligned stack groups.  The batched kernel implements the exact
  // strict-< first-minimum argmin of nearest_point(), so labels (and
  // bits) are identical to the scalar tail below at every tier.
  const simd::BatchKernels& kern = simd::active_kernels();
  const std::size_t width = kern.width;
  if (width > 1) {
    alignas(64) double re[8];  // width ≤ 8 at every tier
    alignas(64) double im[8];
    std::uint32_t labels[8];
    for (; i + width <= symbols.size(); i += width) {
      for (std::size_t l = 0; l < width; ++l) {
        re[l] = symbols[i + l].real();
        im[l] = symbols[i + l].imag();
      }
      kern.qam_nearest(re, im, 1, points_.data(), points_.size(), labels);
      for (std::size_t l = 0; l < width; ++l) {
        for (int k = b_ - 1; k >= 0; --k) {
          out[w++] = static_cast<std::uint8_t>((labels[l] >> k) & 1u);
        }
      }
    }
  }
  for (; i < symbols.size(); ++i) {
    const auto label = static_cast<unsigned>(nearest_point(symbols[i]));
    for (int k = b_ - 1; k >= 0; --k) {
      out[w++] = static_cast<std::uint8_t>((label >> k) & 1u);
    }
  }
}

std::unique_ptr<Modulator> make_modulator(int bits_per_symbol) {
  COMIMO_CHECK(bits_per_symbol >= 1, "bits_per_symbol must be >= 1");
  if (bits_per_symbol == 1) return std::make_unique<BpskModulator>();
  return std::make_unique<QamModulator>(bits_per_symbol);
}

}  // namespace comimo
