#include "comimo/phy/link_workspace.h"

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"
#include "comimo/obs/metrics.h"

namespace comimo {

namespace {
// Block throughput counter for the zero-alloc kernel.  Registration is
// a one-time static; the hot-path add is a relaxed fetch-add behind the
// enabled() branch, preserving the 0-allocs/block steady state.
obs::Counter& link_blocks_counter() {
  static obs::Counter c =
      obs::MetricRegistry::global().counter("phy.link_blocks");
  return c;
}
}  // namespace

void LinkWorkspace::configure(const StbcCode& code, std::size_t mr) {
  COMIMO_CHECK(mr >= 1, "need a receive antenna");
  const std::size_t mt = code.num_tx();
  const std::size_t tt = code.block_length();
  const std::size_t kk = code.symbols_per_block();
  h.resize(mr, mt);
  encoded.resize(tt, mt);
  received.resize(tt, mr);
  symbols.assign(kk, cplx{0.0, 0.0});
  estimates.assign(kk, cplx{0.0, 0.0});
}

void simulate_block(const StbcDecoder& decoder, LinkWorkspace& ws, Rng& rng) {
  const StbcCode& code = decoder.code();
  COMIMO_DCHECK(ws.h.cols() == code.num_tx() &&
                    ws.encoded.rows() == code.block_length() &&
                    ws.received.rows() == code.block_length() &&
                    ws.received.cols() == ws.h.rows() &&
                    ws.symbols.size() == code.symbols_per_block() &&
                    ws.estimates.size() == code.symbols_per_block(),
                "workspace not configured for this code/mr");
  random_gaussian_into(ws.h, rng);
  code.encode_into(ws.symbols, ws.encoded);
  // received(t, j) = Σ_i encoded(t, i)·h(j, i): the same accumulation
  // order as the historical per-block loop, so sums round identically.
  multiply_transposed_into(ws.encoded, ws.h, ws.received);
  add_scaled_noise_into(ws.received, rng, 1.0);
  decoder.decode_into(ws.h, ws.received, ws.estimates, ws.decode_scratch);
  link_blocks_counter().add();
}

TiltedBlockEnergy simulate_block_tilted(const StbcDecoder& decoder,
                                        LinkWorkspace& ws, Rng& rng,
                                        double noise_variance,
                                        double channel_variance) {
  const StbcCode& code = decoder.code();
  COMIMO_DCHECK(ws.h.cols() == code.num_tx() &&
                    ws.encoded.rows() == code.block_length() &&
                    ws.received.rows() == code.block_length() &&
                    ws.received.cols() == ws.h.rows() &&
                    ws.symbols.size() == code.symbols_per_block() &&
                    ws.estimates.size() == code.symbols_per_block(),
                "workspace not configured for this code/mr");
  TiltedBlockEnergy energy;
  // Inlined random_gaussian_into with the sample-energy side channel:
  // identical draw order (row-major over the channel matrix).
  {
    cplx* p = ws.h.data();
    const std::size_t n = ws.h.size();
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = rng.complex_gaussian(channel_variance);
      energy.channel_sq += std::norm(p[i]);
    }
  }
  code.encode_into(ws.symbols, ws.encoded);
  multiply_transposed_into(ws.encoded, ws.h, ws.received);
  // Inlined add_scaled_noise_into, same side channel, same row-major
  // draw order over the received block.
  {
    cplx* p = ws.received.data();
    const std::size_t n = ws.received.size();
    for (std::size_t i = 0; i < n; ++i) {
      const cplx z = rng.complex_gaussian(noise_variance);
      energy.noise_sq += std::norm(z);
      p[i] += z;
    }
  }
  decoder.decode_into(ws.h, ws.received, ws.estimates, ws.decode_scratch);
  link_blocks_counter().add();
  return energy;
}

}  // namespace comimo
