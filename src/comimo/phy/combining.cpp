#include "comimo/phy/combining.h"

#include <algorithm>
#include <cmath>

#include "comimo/common/error.h"

namespace comimo {

std::vector<cplx> combine(CombinerKind kind,
                          const std::vector<std::vector<cplx>>& branches,
                          std::span<const cplx> gains) {
  COMIMO_CHECK(!branches.empty(), "combine needs at least one branch");
  COMIMO_CHECK(gains.size() == branches.size(),
               "one gain per branch required");
  const std::size_t n = branches.front().size();
  for (const auto& b : branches) {
    COMIMO_CHECK(b.size() == n, "branches must have equal length");
  }
  const std::size_t m = branches.size();

  std::vector<cplx> weights(m);
  double norm = 0.0;
  switch (kind) {
    case CombinerKind::kMaximalRatio:
      // w_j = h_j*; noise-free output Σ|h_j|²·s.
      for (std::size_t j = 0; j < m; ++j) weights[j] = std::conj(gains[j]);
      for (std::size_t j = 0; j < m; ++j) norm += std::norm(gains[j]);
      break;
    case CombinerKind::kEqualGain:
      // w_j = e^{-i∠h_j}; noise-free output Σ|h_j|·s.
      for (std::size_t j = 0; j < m; ++j) {
        const double mag = std::abs(gains[j]);
        weights[j] = mag > 0.0 ? std::conj(gains[j]) / mag : cplx{1.0, 0.0};
        norm += mag;
      }
      break;
    case CombinerKind::kSelection: {
      std::size_t best = 0;
      for (std::size_t j = 1; j < m; ++j) {
        if (std::abs(gains[j]) > std::abs(gains[best])) best = j;
      }
      for (std::size_t j = 0; j < m; ++j) weights[j] = cplx{0.0, 0.0};
      const double mag = std::abs(gains[best]);
      weights[best] = mag > 0.0 ? std::conj(gains[best]) / mag : cplx{1.0, 0.0};
      norm = mag;
      break;
    }
  }
  if (norm <= 0.0) norm = 1.0;

  std::vector<cplx> out(n, cplx{0.0, 0.0});
  for (std::size_t j = 0; j < m; ++j) {
    if (weights[j] == cplx{0.0, 0.0}) continue;
    const auto& b = branches[j];
    for (std::size_t i = 0; i < n; ++i) out[i] += weights[j] * b[i];
  }
  const double inv = 1.0 / norm;
  for (auto& s : out) s *= inv;
  return out;
}

double combining_snr_gain(CombinerKind kind, std::span<const cplx> gains) {
  COMIMO_CHECK(!gains.empty(), "no branches");
  const auto m = static_cast<double>(gains.size());
  double sum_mag = 0.0;
  double sum_pow = 0.0;
  double max_pow = 0.0;
  for (const auto& g : gains) {
    const double p = std::norm(g);
    sum_mag += std::sqrt(p);
    sum_pow += p;
    max_pow = std::max(max_pow, p);
  }
  switch (kind) {
    case CombinerKind::kMaximalRatio:
      return sum_pow;
    case CombinerKind::kEqualGain:
      return sum_mag * sum_mag / m;
    case CombinerKind::kSelection:
      return max_pow;
  }
  return 0.0;
}

}  // namespace comimo
