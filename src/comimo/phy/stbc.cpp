#include "comimo/phy/stbc.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/rng.h"

namespace comimo {

StbcCode::StbcCode(std::size_t num_tx, std::size_t t, std::size_t k)
    : num_tx_(num_tx),
      t_(t),
      k_(k),
      power_scale_(1.0 / std::sqrt(static_cast<double>(num_tx))),
      a_(t * num_tx * k, cplx{0.0, 0.0}),
      b_(t * num_tx * k, cplx{0.0, 0.0}) {}

void StbcCode::set_a(std::size_t t, std::size_t i, std::size_t k, cplx v) {
  a_[idx(t, i, k)] = v;
}
void StbcCode::set_b(std::size_t t, std::size_t i, std::size_t k, cplx v) {
  b_[idx(t, i, k)] = v;
}

cplx StbcCode::coeff_a(std::size_t t, std::size_t i, std::size_t k) const {
  COMIMO_DCHECK(t < t_ && i < num_tx_ && k < k_, "coeff index out of range");
  return a_[idx(t, i, k)];
}
cplx StbcCode::coeff_b(std::size_t t, std::size_t i, std::size_t k) const {
  COMIMO_DCHECK(t < t_ && i < num_tx_ && k < k_, "coeff index out of range");
  return b_[idx(t, i, k)];
}

StbcCode StbcCode::siso() {
  StbcCode c(1, 1, 1);
  c.set_a(0, 0, 0, 1.0);
  return c;
}

StbcCode StbcCode::alamouti() {
  //  time 0: [ s1   s2 ]
  //  time 1: [-s2*  s1*]
  StbcCode c(2, 2, 2);
  c.set_a(0, 0, 0, 1.0);
  c.set_a(0, 1, 1, 1.0);
  c.set_b(1, 0, 1, -1.0);
  c.set_b(1, 1, 0, 1.0);
  return c;
}

namespace {
// Sign pattern of the rate-1/2 real block used by G3/G4 (Tarokh et al.,
// "Space-time block codes from orthogonal designs", 1999): rows are time
// slots, columns antennas; entry (t,i) is ±s_{perm} with
// value v = sign · symbol index.
struct Entry {
  int symbol;  // 1-based symbol index
  int sign;
};
constexpr Entry kG4Top[4][4] = {
    {{1, +1}, {2, +1}, {3, +1}, {4, +1}},
    {{2, -1}, {1, +1}, {4, -1}, {3, +1}},
    {{3, -1}, {4, +1}, {1, +1}, {2, -1}},
    {{4, -1}, {3, -1}, {2, +1}, {1, +1}},
};
}  // namespace

StbcCode StbcCode::g3() {
  StbcCode c(3, 8, 4);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t i = 0; i < 3; ++i) {
      const Entry e = kG4Top[t][i];
      const auto k = static_cast<std::size_t>(e.symbol - 1);
      c.set_a(t, i, k, static_cast<double>(e.sign));
      c.set_b(t + 4, i, k, static_cast<double>(e.sign));
    }
  }
  return c;
}

StbcCode StbcCode::g4() {
  StbcCode c(4, 8, 4);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t i = 0; i < 4; ++i) {
      const Entry e = kG4Top[t][i];
      const auto k = static_cast<std::size_t>(e.symbol - 1);
      c.set_a(t, i, k, static_cast<double>(e.sign));
      c.set_b(t + 4, i, k, static_cast<double>(e.sign));
    }
  }
  return c;
}

StbcCode StbcCode::for_antennas(std::size_t num_tx) {
  switch (num_tx) {
    case 1:
      return siso();
    case 2:
      return alamouti();
    case 3:
      return g3();
    case 4:
      return g4();
    default:
      throw InvalidArgument("StbcCode::for_antennas supports 1..4 antennas");
  }
}

CMatrix StbcCode::encode(std::span<const cplx> symbols) const {
  COMIMO_CHECK(symbols.size() == k_, "encode needs exactly K symbols");
  CMatrix out(t_, num_tx_);
  encode_into(symbols, out);
  return out;
}

void StbcCode::encode_into(std::span<const cplx> symbols,
                           CMatrixView out) const {
  COMIMO_DCHECK(symbols.size() == k_, "encode needs exactly K symbols");
  COMIMO_DCHECK(out.rows() == t_ && out.cols() == num_tx_,
                "encode_into output must be T × num_tx");
  for (std::size_t t = 0; t < t_; ++t) {
    for (std::size_t i = 0; i < num_tx_; ++i) {
      cplx v{0.0, 0.0};
      for (std::size_t k = 0; k < k_; ++k) {
        v += a_[idx(t, i, k)] * symbols[k] +
             b_[idx(t, i, k)] * std::conj(symbols[k]);
      }
      out(t, i) = v * power_scale_;
    }
  }
}

double StbcCode::symbol_weight() const {
  double weight = 0.0;
  for (std::size_t t = 0; t < t_; ++t) {
    weight += std::norm(a_[idx(t, 0, 0)]) + std::norm(b_[idx(t, 0, 0)]);
  }
  return weight;
}

bool StbcCode::is_orthogonal_design(double tol) const {
  // C^H C must equal power_scale²·w·(Σ|s_k|²)·I for all symbol vectors,
  // with w = symbol_weight().  Checking a few random draws is
  // sufficient for a fixed linear design.
  const double weight = symbol_weight();
  Rng rng(0xC0DE5EEDULL);
  for (int trial = 0; trial < 4; ++trial) {
    std::vector<cplx> s(k_);
    double energy = 0.0;
    for (auto& v : s) {
      v = rng.complex_gaussian(1.0);
      energy += std::norm(v);
    }
    const CMatrix c = encode(s);
    const CMatrix gram = c.hermitian() * c;
    const double diag = power_scale_ * power_scale_ * weight * energy;
    for (std::size_t r = 0; r < num_tx_; ++r) {
      for (std::size_t cc = 0; cc < num_tx_; ++cc) {
        const cplx expected = (r == cc) ? cplx{diag, 0.0} : cplx{0.0, 0.0};
        if (std::abs(gram(r, cc) - expected) > tol * std::max(1.0, diag)) {
          return false;
        }
      }
    }
  }
  return true;
}

StbcDecoder::StbcDecoder(StbcCode code) : code_(std::move(code)) {}

std::vector<cplx> StbcDecoder::decode(const CMatrix& h,
                                      const CMatrix& received) const {
  const std::size_t mt = code_.num_tx();
  const std::size_t tt = code_.block_length();
  const std::size_t kk = code_.symbols_per_block();
  COMIMO_CHECK(h.cols() == mt, "channel must have num_tx columns");
  COMIMO_CHECK(received.rows() == tt, "received block length mismatch");
  COMIMO_CHECK(received.cols() == h.rows(), "received antennas mismatch");
  StbcDecodeScratch scratch;
  std::vector<cplx> symbols(kk);
  decode_into(h, received, symbols, scratch);
  return symbols;
}

void StbcDecoder::decode_into(ConstCMatrixView h, ConstCMatrixView received,
                              std::span<cplx> out_symbols,
                              StbcDecodeScratch& scratch) const {
  const std::size_t mt = code_.num_tx();
  const std::size_t tt = code_.block_length();
  const std::size_t kk = code_.symbols_per_block();
  COMIMO_DCHECK(h.cols() == mt, "channel must have num_tx columns");
  COMIMO_DCHECK(received.rows() == tt, "received block length mismatch");
  COMIMO_DCHECK(received.cols() == h.rows(), "received antennas mismatch");
  COMIMO_DCHECK(out_symbols.size() == kk, "decode_into needs K output slots");
  const std::size_t mr = h.rows();
  const double ps = code_.power_scale();

  // Real expansion: y = F x + n with x = [Re s_0, Im s_0, ...].
  const std::size_t rows = 2 * tt * mr;
  const std::size_t cols = 2 * kk;
  std::vector<double>& f = scratch.f;
  std::vector<double>& y = scratch.y;
  f.assign(rows * cols, 0.0);
  y.assign(rows, 0.0);
  for (std::size_t t = 0; t < tt; ++t) {
    for (std::size_t j = 0; j < mr; ++j) {
      const std::size_t row_re = 2 * (t * mr + j);
      const std::size_t row_im = row_re + 1;
      y[row_re] = received(t, j).real();
      y[row_im] = received(t, j).imag();
      for (std::size_t k = 0; k < kk; ++k) {
        cplx alpha{0.0, 0.0};
        cplx beta{0.0, 0.0};
        for (std::size_t i = 0; i < mt; ++i) {
          alpha += code_.coeff_a(t, i, k) * h(j, i);
          beta += code_.coeff_b(t, i, k) * h(j, i);
        }
        alpha *= ps;
        beta *= ps;
        // r = alpha·s + beta·conj(s)
        f[row_re * cols + 2 * k] = alpha.real() + beta.real();
        f[row_re * cols + 2 * k + 1] = -alpha.imag() + beta.imag();
        f[row_im * cols + 2 * k] = alpha.imag() + beta.imag();
        f[row_im * cols + 2 * k + 1] = alpha.real() - beta.real();
      }
    }
  }

  // Normal equations (F^T F) x = F^T y; for orthogonal designs F^T F is
  // ps²‖H‖²_F·I but we solve generally for robustness.
  CMatrix& gram = scratch.gram;
  gram.resize(cols, cols);
  std::vector<cplx>& rhs = scratch.rhs;
  rhs.assign(cols, cplx{0.0, 0.0});
  for (std::size_t c1 = 0; c1 < cols; ++c1) {
    for (std::size_t c2 = c1; c2 < cols; ++c2) {
      double dot = 0.0;
      for (std::size_t r = 0; r < rows; ++r) {
        dot += f[r * cols + c1] * f[r * cols + c2];
      }
      gram(c1, c2) = dot;
      gram(c2, c1) = dot;
    }
    double dot_y = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      dot_y += f[r * cols + c1] * y[r];
    }
    rhs[c1] = dot_y;
  }
  gram.solve_into(rhs, scratch.x, scratch.solve_work);
  const std::vector<cplx>& x = scratch.x;

  for (std::size_t k = 0; k < kk; ++k) {
    out_symbols[k] = cplx{x[2 * k].real(), x[2 * k + 1].real()};
  }
}

double StbcDecoder::combining_gain(const CMatrix& h) const {
  const double ps = code_.power_scale();
  return ps * ps * h.frobenius_norm2();
}

}  // namespace comimo
