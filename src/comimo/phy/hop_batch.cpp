#include "comimo/phy/hop_batch.h"

#include "comimo/common/error.h"

namespace comimo {

void HopBatchWorkspace::configure_hop(const StbcCode& code, std::size_t mr,
                                      std::size_t w, std::size_t bpb) {
  COMIMO_CHECK(w >= 1, "need at least one lane");
  const std::size_t num_tx = code.num_tx();
  width = w;
  mt = num_tx;
  bits_per_block = bpb;
  belief_bits.assign(num_tx * w * bpb, 0);
  decoded_all.assign(w * bpb, 0);
  if (lane_ant_syms.size() < num_tx) lane_ant_syms.resize(num_tx);
  // For the full code the sub-block is the whole block, so shaping the
  // link planes here makes the first long-haul pass allocation-free;
  // ladder-degraded sub-codes reshape (smaller, capacity reused) via
  // configure_long_haul.
  configure_long_haul(code, mr, w, bpb);
}

void HopBatchWorkspace::configure_long_haul(const StbcCode& code_use,
                                            std::size_t mr, std::size_t w,
                                            std::size_t sub_bits) {
  const std::size_t mt_use = code_use.num_tx();
  const std::size_t k_use = code_use.symbols_per_block();
  link.configure(code_use, mr, w, sub_bits);
  ant_sym_re.assign(mt_use * k_use * w, 0.0);
  ant_sym_im.assign(mt_use * k_use * w, 0.0);
}

}  // namespace comimo
