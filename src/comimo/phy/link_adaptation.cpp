#include "comimo/phy/link_adaptation.h"

#include <cmath>

#include "comimo/channel/fading.h"
#include "comimo/common/error.h"
#include "comimo/common/units.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/special.h"
#include "comimo/phy/ber.h"
#include "comimo/phy/detector.h"
#include "comimo/phy/modulation.h"

namespace comimo {

AdaptiveModulationController::AdaptiveModulationController(
    const LinkAdaptationConfig& config)
    : config_(config) {
  COMIMO_CHECK(config.b_min >= 1 && config.b_max >= config.b_min &&
                   config.b_max <= 8,
               "b range must sit in 1..8");
  COMIMO_CHECK(config.target_ber > 0.0 && config.target_ber < 0.5,
               "target BER must be in (0, 0.5)");
  COMIMO_CHECK(config.hysteresis_db >= 0.0, "hysteresis must be >= 0");
  required_snr_db_.reserve(config.b_max - config.b_min + 1);
  for (int b = config.b_min; b <= config.b_max; ++b) {
    // Invert p = A(b)·Q(√(B(b)·γ)):  γ = (Q⁻¹(p/A))² / B.
    const double a = mqam_coefficient(b);
    const double snr_factor = mqam_snr_factor(b);
    const double q_arg = q_inverse(std::min(0.499, config.target_ber / a));
    const double gamma = q_arg * q_arg / snr_factor;
    required_snr_db_.push_back(linear_to_db(gamma));
  }
}

double AdaptiveModulationController::required_snr_db(int b) const {
  COMIMO_CHECK(b >= config_.b_min && b <= config_.b_max, "b out of range");
  return required_snr_db_[static_cast<std::size_t>(b - config_.b_min)];
}

int AdaptiveModulationController::select_b(double snr_db) const {
  const double budget = snr_db - config_.hysteresis_db;
  int best = config_.b_min;
  for (int b = config_.b_min; b <= config_.b_max; ++b) {
    if (required_snr_db(b) <= budget) best = b;
  }
  return best;
}

AdaptationRun simulate_adaptive_link(const LinkAdaptationConfig& config,
                                     const AdaptiveLinkScenario& scenario) {
  COMIMO_CHECK(scenario.blocks >= 1 && scenario.symbols_per_block >= 1,
               "empty scenario");
  COMIMO_CHECK(scenario.fixed_b == 0 ||
                   (scenario.fixed_b >= 1 && scenario.fixed_b <= 8),
               "fixed_b must be 0 (adaptive) or in 1..8");
  const AdaptiveModulationController controller(config);
  const double mean_snr = db_to_linear(scenario.mean_snr_db);

  CorrelatedFadingTrack track(scenario.fading_rho, Rng(scenario.seed));
  Rng noise_rng(scenario.seed, 0xAD);

  AdaptationRun run;
  run.b_histogram.assign(8, 0);
  for (std::size_t blk = 0; blk < scenario.blocks; ++blk) {
    const cplx h = track.next();
    // Per-symbol SNR of this block; per-bit SNR divides by b.
    const double symbol_snr = std::norm(h) * mean_snr;
    int b = scenario.fixed_b;
    if (b == 0) {
      // The controller sees the per-bit SNR of each candidate b; using
      // the per-symbol SNR with the per-bit requirement of b means
      // γ_bit = γ_sym/b — fold that into selection by scanning.
      b = config.b_min;
      for (int cand = config.b_min; cand <= config.b_max; ++cand) {
        const double bit_snr_db =
            linear_to_db(std::max(symbol_snr / cand, 1e-300));
        if (controller.required_snr_db(cand) <=
            bit_snr_db - config.hysteresis_db) {
          b = cand;
        }
      }
    }
    run.b_histogram[static_cast<std::size_t>(b - 1)] += 1;

    const auto modem = make_modulator(b);
    const std::size_t nbits =
        scenario.symbols_per_block * static_cast<std::size_t>(b);
    const BitVec bits =
        random_bits(nbits, scenario.seed ^ (blk * 0x9E3779B9ULL));
    std::vector<cplx> x = modem->modulate(bits);
    // Unit-energy constellation scaled so E_s/N0 = symbol_snr with
    // N0 = 1.
    const double scale = std::sqrt(mean_snr);
    std::vector<cplx> y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      y[i] = h * (x[i] * scale) + noise_rng.complex_gaussian(1.0);
    }
    // Coherent equalization (channel known, as throughout the paper).
    const cplx inv = std::conj(h) / std::max(std::norm(h), 1e-300) / scale;
    for (auto& v : y) v *= inv;
    const BitVec decoded = modem->demodulate(y);
    run.bit_errors += count_bit_errors(bits, decoded);
    run.bits += nbits;
    run.symbols += scenario.symbols_per_block;
  }
  run.ber = run.bits ? static_cast<double>(run.bit_errors) /
                           static_cast<double>(run.bits)
                     : 0.0;
  run.mean_bits_per_symbol =
      run.symbols ? static_cast<double>(run.bits) /
                        static_cast<double>(run.symbols)
                  : 0.0;
  return run;
}

}  // namespace comimo
