// Algorithm 1 — cooperative relay of primary traffic by SUs.
//
// m secondary users receive the primary transmitter's data over a 1×m
// SIMO link (step 1) and forward it to the primary receiver over an m×1
// MISO link (step 2).  This header models the per-step, per-node
// energies:
//   step 1: E_Sr = e^MIMOr        (each SU),  E_Pt = e^MIMOt(1, m) (Pt)
//   step 2: E_St = e^MIMOt(m, 1)  (each SU),  E_Pr = e^MIMOr       (Pr)
//   E_S = E_St + E_Sr             (per-SU relay energy)
#pragma once

#include <cstddef>
#include <cstdint>

#include "comimo/common/constants.h"
#include "comimo/energy/mimo_energy.h"
#include "comimo/energy/optimizer.h"
#include "comimo/phy/ber_sweep.h"

namespace comimo {

/// Static description of a relay deployment.
struct OverlayRelayConfig {
  unsigned num_relays = 2;      ///< m
  double pt_to_su_m = 100.0;    ///< SIMO leg length (Pt → SUs)
  double su_to_pr_m = 100.0;    ///< MISO leg length (SUs → Pr)
  double ber = 5e-4;            ///< target BER of the relayed stream
  double bandwidth_hz = 40e3;   ///< B
};

/// Waveform-level BER of Algorithm 1's two legs, each measured through
/// the batched link kernel at the planned constellation and the
/// solver's ē_b for that leg.
struct OverlayRelayWaveform {
  WaveformBerPoint simo;  ///< step 1: Pt → SUs, 1×m
  WaveformBerPoint miso;  ///< step 2: SUs → Pr, m×1
};

/// Per-step energy report of Algorithm 1.
struct OverlayRelayEnergies {
  int b_simo = 0;        ///< constellation on the Pt→SUs leg
  int b_miso = 0;        ///< constellation on the SUs→Pr leg
  double e_pt = 0.0;     ///< E_Pt: primary transmitter energy/bit
  double e_su_rx = 0.0;  ///< E_Sr: per-SU reception energy/bit
  double e_su_tx = 0.0;  ///< E_St: per-SU transmission energy/bit
  double e_pr = 0.0;     ///< E_Pr: primary receiver energy/bit
  /// E_S = E_St + E_Sr, the per-SU relay cost the planner budgets.
  [[nodiscard]] double e_su_total() const noexcept {
    return e_su_rx + e_su_tx;
  }
};

class OverlayRelayScheme {
 public:
  explicit OverlayRelayScheme(const SystemParams& params = {});

  /// Computes the per-step energies; constellations are optimized per
  /// leg to minimize the corresponding node energy (the paper's table-
  /// driven rule).
  [[nodiscard]] OverlayRelayEnergies plan(
      const OverlayRelayConfig& config) const;

  /// Energy per bit of the direct Pt→Pr SISO transmission at distance
  /// d1 and BER p (the E_1 reference of §3), minimized over b.
  [[nodiscard]] ConstellationChoice direct_transmission_energy(
      double d1_m, double p, double bandwidth_hz) const;

  /// Cross-checks a planned relay against actual modulated blocks: each
  /// leg runs at γ_b = ē_b(p, b, mt, mr)/N0 with the constellations the
  /// plan chose.  Relay counts above the STBC design range fall back to
  /// the G4 code on the MISO leg.
  /// `shards` > 1 splits each leg across worker processes via the
  /// mc/sharded.h driver — bit-identical to the single-process run.
  [[nodiscard]] OverlayRelayWaveform measure_relay_waveform(
      const OverlayRelayConfig& config, const OverlayRelayEnergies& energies,
      std::size_t blocks = 4000, std::uint64_t seed = 1,
      ThreadPool* pool = nullptr, std::size_t shards = 1) const;

  [[nodiscard]] const MimoEnergyModel& energy_model() const noexcept {
    return mimo_;
  }

 private:
  SystemParams params_;
  MimoEnergyModel mimo_;
  ConstellationOptimizer optimizer_;
};

}  // namespace comimo
