#include "comimo/overlay/distance_planner.h"

#include "comimo/common/error.h"

namespace comimo {

OverlayDistancePlanner::OverlayDistancePlanner(const SystemParams& params,
                                               EbBarConvention convention)
    : params_(params),
      optimizer_(params, kMinConstellationBits, kMaxConstellationBits,
                 convention) {}

OverlayDistanceResult OverlayDistancePlanner::plan(
    const OverlayDistanceQuery& query) const {
  COMIMO_CHECK(query.d1_m > 0.0, "D1 must be positive");
  COMIMO_CHECK(query.num_relays >= 1, "need at least one relay");
  OverlayDistanceResult r;
  r.query = query;

  // 1. The PU's per-bit budget on the direct link.
  const ConstellationChoice direct = optimizer_.min_mimo_tx_energy(
      query.p_primary, 1, 1, query.d1_m, query.bandwidth_hz);
  r.e1 = direct.value;
  r.b1 = direct.b;

  // 2. Largest SIMO leg: E_Pt = E1 (transmit side only; the SUs pay
  //    reception from their own budget in step 3's accounting).
  const ConstellationChoice d2 = optimizer_.max_distance_for_energy(
      r.e1, query.p_relay, 1, query.num_relays, query.bandwidth_hz,
      /*include_rx_energy=*/false);
  r.d2_m = d2.value;
  r.b2 = d2.b;

  // 3. Largest MISO leg: E_S = e^MIMOt(m,1) + e^MIMOr = E1.
  const ConstellationChoice d3 = optimizer_.max_distance_for_energy(
      r.e1, query.p_relay, query.num_relays, 1, query.bandwidth_hz,
      /*include_rx_energy=*/true);
  r.d3_m = d3.value;
  r.b3 = d3.b;
  return r;
}

std::vector<OverlayDistanceResult> OverlayDistancePlanner::sweep_d1(
    const std::vector<double>& d1_values,
    const OverlayDistanceQuery& base) const {
  std::vector<OverlayDistanceResult> out;
  out.reserve(d1_values.size());
  for (const double d1 : d1_values) {
    OverlayDistanceQuery q = base;
    q.d1_m = d1;
    out.push_back(plan(q));
  }
  return out;
}

}  // namespace comimo
