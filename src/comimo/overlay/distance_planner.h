// The §3 distance computation behind Fig. 6.
//
// Given the primary pair distance D1 and the equal-energy assumption
// ("PUs and SUs use the same amount of energy for data transmission"):
//   1. E1 = min_b e^MIMOt(1,1)(D1, p_primary, b)  — the PU's SISO budget;
//   2. D2: largest Pt→SUs SIMO length with E_Pt = E1 at the improved
//      BER p_relay, maximized over b;
//   3. D3: largest SUs→Pr MISO length with E_S = e^MIMOt(m,1) + e^MIMOr
//      = E1 at p_relay, maximized over b.
#pragma once

#include <vector>

#include "comimo/common/constants.h"
#include "comimo/energy/optimizer.h"

namespace comimo {

struct OverlayDistanceQuery {
  double d1_m = 250.0;        ///< Pt→Pr distance
  unsigned num_relays = 3;    ///< m
  double bandwidth_hz = 40e3;
  double p_primary = 5e-3;    ///< BER of the direct PU link
  double p_relay = 5e-4;      ///< BER of the SU-assisted link (10× better)
};

struct OverlayDistanceResult {
  OverlayDistanceQuery query;
  double e1 = 0.0;      ///< PU energy budget per bit [J]
  int b1 = 0;           ///< optimal b of the direct link
  double d2_m = 0.0;    ///< largest distance SUs ↔ Pt (0 = infeasible)
  int b2 = 0;
  double d3_m = 0.0;    ///< largest distance SUs ↔ Pr (0 = infeasible)
  int b3 = 0;
  [[nodiscard]] bool feasible() const noexcept {
    return d2_m > 0.0 && d3_m > 0.0;
  }
};

class OverlayDistancePlanner {
 public:
  /// The default convention follows eq. (5) literally; the Fig. 6 bench
  /// also runs kTotalEnergy, the convention the paper's own anchor
  /// numbers imply (see EXPERIMENTS.md).
  explicit OverlayDistancePlanner(
      const SystemParams& params = {},
      EbBarConvention convention = EbBarConvention::kPerAntennaSplit);

  [[nodiscard]] OverlayDistanceResult plan(
      const OverlayDistanceQuery& query) const;

  /// Sweeps D1 (Fig. 6's x axis) with everything else fixed.
  [[nodiscard]] std::vector<OverlayDistanceResult> sweep_d1(
      const std::vector<double>& d1_values,
      const OverlayDistanceQuery& base) const;

 private:
  SystemParams params_;
  ConstellationOptimizer optimizer_;
};

}  // namespace comimo
