#include "comimo/overlay/relay_scheme.h"

#include "comimo/common/error.h"

namespace comimo {

OverlayRelayScheme::OverlayRelayScheme(const SystemParams& params)
    : params_(params), mimo_(params), optimizer_(params) {}

OverlayRelayEnergies OverlayRelayScheme::plan(
    const OverlayRelayConfig& config) const {
  COMIMO_CHECK(config.num_relays >= 1, "need at least one relay");
  COMIMO_CHECK(config.pt_to_su_m > 0.0 && config.su_to_pr_m > 0.0,
               "leg lengths must be positive");
  OverlayRelayEnergies e;

  // Step 1 — Pt transmits over the 1×m SIMO link; b minimizes Pt's
  // transmit energy.
  const ConstellationChoice simo = optimizer_.min_mimo_tx_energy(
      config.ber, 1, config.num_relays, config.pt_to_su_m,
      config.bandwidth_hz);
  e.b_simo = simo.b;
  e.e_pt = simo.value;
  e.e_su_rx = mimo_.rx_energy(simo.b, config.bandwidth_hz);

  // Step 2 — the m SUs transmit over the m×1 MISO link; b minimizes the
  // per-SU transmit energy.
  const ConstellationChoice miso = optimizer_.min_mimo_tx_energy(
      config.ber, config.num_relays, 1, config.su_to_pr_m,
      config.bandwidth_hz);
  e.b_miso = miso.b;
  e.e_su_tx = miso.value;
  e.e_pr = mimo_.rx_energy(miso.b, config.bandwidth_hz);
  return e;
}

ConstellationChoice OverlayRelayScheme::direct_transmission_energy(
    double d1_m, double p, double bandwidth_hz) const {
  return optimizer_.min_mimo_tx_energy(p, 1, 1, d1_m, bandwidth_hz);
}

}  // namespace comimo
