#include "comimo/overlay/relay_scheme.h"

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

OverlayRelayScheme::OverlayRelayScheme(const SystemParams& params)
    : params_(params), mimo_(params), optimizer_(params) {}

OverlayRelayEnergies OverlayRelayScheme::plan(
    const OverlayRelayConfig& config) const {
  COMIMO_CHECK(config.num_relays >= 1, "need at least one relay");
  COMIMO_CHECK(config.pt_to_su_m > 0.0 && config.su_to_pr_m > 0.0,
               "leg lengths must be positive");
  OverlayRelayEnergies e;

  // Step 1 — Pt transmits over the 1×m SIMO link; b minimizes Pt's
  // transmit energy.
  const ConstellationChoice simo = optimizer_.min_mimo_tx_energy(
      config.ber, 1, config.num_relays, config.pt_to_su_m,
      config.bandwidth_hz);
  e.b_simo = simo.b;
  e.e_pt = simo.value;
  e.e_su_rx = mimo_.rx_energy(simo.b, config.bandwidth_hz);

  // Step 2 — the m SUs transmit over the m×1 MISO link; b minimizes the
  // per-SU transmit energy.
  const ConstellationChoice miso = optimizer_.min_mimo_tx_energy(
      config.ber, config.num_relays, 1, config.su_to_pr_m,
      config.bandwidth_hz);
  e.b_miso = miso.b;
  e.e_su_tx = miso.value;
  e.e_pr = mimo_.rx_energy(miso.b, config.bandwidth_hz);
  return e;
}

ConstellationChoice OverlayRelayScheme::direct_transmission_energy(
    double d1_m, double p, double bandwidth_hz) const {
  return optimizer_.min_mimo_tx_energy(p, 1, 1, d1_m, bandwidth_hz);
}

OverlayRelayWaveform OverlayRelayScheme::measure_relay_waveform(
    const OverlayRelayConfig& config, const OverlayRelayEnergies& energies,
    std::size_t blocks, std::uint64_t seed, ThreadPool* pool,
    std::size_t shards) const {
  COMIMO_CHECK(config.num_relays >= 1, "need at least one relay");
  COMIMO_CHECK(blocks >= 1, "need at least one block");
  COMIMO_CHECK(energies.b_simo >= 1 && energies.b_miso >= 1,
               "energies must come from plan()");
  const auto m_tx = static_cast<unsigned>(stbc_supported_tx(config.num_relays));

  OverlayRelayWaveform out;
  {
    // Step 1 — Pt transmits, the m SUs receive: a 1×m link.
    WaveformBerConfig cfg;
    cfg.b = energies.b_simo;
    cfg.mt = 1;
    cfg.mr = config.num_relays;
    cfg.blocks = blocks;
    cfg.seed = seed;
    cfg.pool = pool;
    cfg.shards = shards;
    const double ebar = mimo_.solver().solve(config.ber, cfg.b, 1, cfg.mr);
    out.simo =
        measure_waveform_ber(cfg, linear_to_db(ebar / params_.n0_w_per_hz));
  }
  {
    // Step 2 — the SUs transmit to Pr: an m×1 link (clamped to the
    // largest orthogonal design when m > 4).
    WaveformBerConfig cfg;
    cfg.b = energies.b_miso;
    cfg.mt = m_tx;
    cfg.mr = 1;
    cfg.blocks = blocks;
    cfg.seed = seed + 0x51D0;  // independent stream family per leg
    cfg.pool = pool;
    cfg.shards = shards;
    const double ebar = mimo_.solver().solve(config.ber, cfg.b, m_tx, 1);
    out.miso =
        measure_waveform_ber(cfg, linear_to_db(ebar / params_.n0_w_per_hz));
  }
  return out;
}

}  // namespace comimo
