#include "comimo/energy/noise_floor.h"

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

NoiseFloorAnalyzer::NoiseFloorAnalyzer(const SystemParams& params)
    : params_(params) {}

double NoiseFloorAnalyzer::noise_floor_w_per_hz() const noexcept {
  return params_.sigma2_w_per_hz * params_.noise_figure;
}

NoiseFloorReport NoiseFloorAnalyzer::analyze(double e_pa_per_bit, int b,
                                             double bw_hz,
                                             double pu_distance_m) const {
  COMIMO_CHECK(e_pa_per_bit >= 0.0, "negative PA energy");
  COMIMO_CHECK(b >= 1 && bw_hz > 0.0, "invalid rate parameters");
  COMIMO_CHECK(pu_distance_m > 0.0, "PU distance must be positive");
  NoiseFloorReport rpt;
  const double alpha = params_.pa_overhead(b);
  // e_PA includes the PA drain overhead (1+α); the radiated share is
  // e_PA/(1+α) per bit at b·B bits per second.
  rpt.radiated_power_w =
      e_pa_per_bit / (1.0 + alpha) * static_cast<double>(b) * bw_hz;
  // Free-space long-haul attenuation without the SU link margin/noise
  // figure (those are receiver-design margins, not propagation):
  const double four_pi_d = 4.0 * kPi * pu_distance_m;
  const double attenuation =
      four_pi_d * four_pi_d / (params_.gt_gr * params_.lambda_m *
                               params_.lambda_m);
  rpt.received_psd_w_hz = rpt.radiated_power_w / attenuation / bw_hz;
  rpt.noise_floor_w_hz = noise_floor_w_per_hz();
  rpt.margin_db = linear_to_db(rpt.noise_floor_w_hz /
                               std::max(rpt.received_psd_w_hz, 1e-300));
  return rpt;
}

}  // namespace comimo
