#include "comimo/energy/mimo_energy.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/common/units.h"

namespace comimo {

MimoEnergyModel::MimoEnergyModel(const SystemParams& params,
                                 EbBarConvention convention)
    : params_(params), solver_(params, convention) {}

double MimoEnergyModel::pa_energy_with_ebar(int b, double ebar, unsigned mt,
                                            double distance_m) const {
  COMIMO_CHECK(b >= 1, "b must be >= 1");
  COMIMO_CHECK(mt >= 1, "mt must be >= 1");
  COMIMO_CHECK(ebar >= 0.0 && distance_m >= 0.0, "negative inputs");
  const double alpha = params_.pa_overhead(b);
  return (1.0 / static_cast<double>(mt)) * (1.0 + alpha) * ebar *
         params_.long_haul_attenuation(distance_m);
}

double MimoEnergyModel::pa_energy(int b, double p, unsigned mt, unsigned mr,
                                  double distance_m) const {
  const double ebar = solver_.solve(p, b, mt, mr);
  return pa_energy_with_ebar(b, ebar, mt, distance_m);
}

double MimoEnergyModel::tx_circuit_energy(int b, double bw_hz) const {
  COMIMO_CHECK(b >= 1 && bw_hz > 0.0, "invalid rate parameters");
  return (params_.p_ct_w + params_.p_syn_w) /
         (static_cast<double>(b) * bw_hz);
}

double MimoEnergyModel::rx_energy(int b, double bw_hz) const {
  COMIMO_CHECK(b >= 1 && bw_hz > 0.0, "invalid rate parameters");
  return (params_.p_cr_w + params_.p_syn_w) /
         (static_cast<double>(b) * bw_hz);
}

EnergyBreakdown MimoEnergyModel::tx_energy(int b, double p, unsigned mt,
                                           unsigned mr, double distance_m,
                                           double bw_hz) const {
  EnergyBreakdown e;
  e.pa = pa_energy(b, p, mt, mr, distance_m);
  e.circuit = tx_circuit_energy(b, bw_hz);
  return e;
}

double MimoEnergyModel::distance_for_energy(double energy_per_bit, int b,
                                            double p, unsigned mt,
                                            unsigned mr, double bw_hz) const {
  COMIMO_CHECK(energy_per_bit > 0.0, "energy budget must be positive");
  const double circuit = tx_circuit_energy(b, bw_hz);
  const double pa_budget = energy_per_bit - circuit;
  if (pa_budget <= 0.0) {
    throw InfeasibleError(
        "energy budget does not cover the transmit circuit energy");
  }
  const double ebar = solver_.solve(p, b, mt, mr);
  // e_PA = (1/mt)(1+α)·ē_b·(4πD)²/(GtGr λ²)·Ml·Nf  ⇒  solve for D.
  const double alpha = params_.pa_overhead(b);
  const double coeff = (1.0 / static_cast<double>(mt)) * (1.0 + alpha) *
                       ebar * params_.link_margin * params_.noise_figure /
                       (params_.gt_gr * params_.lambda_m * params_.lambda_m);
  const double four_pi_d_sq = pa_budget / coeff;
  return std::sqrt(four_pi_d_sq) / (4.0 * kPi);
}

}  // namespace comimo
