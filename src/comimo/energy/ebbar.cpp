#include "comimo/energy/ebbar.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/mc/engine.h"
#include "comimo/numeric/cmatrix.h"
#include "comimo/numeric/quadrature.h"
#include "comimo/numeric/rng.h"
#include "comimo/numeric/roots.h"
#include "comimo/numeric/special.h"
#include "comimo/phy/ber.h"

namespace comimo {

EbBarSolver::EbBarSolver(const SystemParams& params,
                         EbBarConvention convention)
    : params_(params), convention_(convention) {
  COMIMO_CHECK(params.n0_w_per_hz > 0.0, "N0 must be positive");
}

double EbBarSolver::gamma_unit(double ebar, unsigned mt) const noexcept {
  const double split =
      convention_ == EbBarConvention::kPerAntennaSplit
          ? static_cast<double>(mt)
          : 1.0;
  return ebar / (params_.n0_w_per_hz * split);
}

double EbBarSolver::average_ber(double ebar, int b, unsigned mt,
                                unsigned mr) const {
  COMIMO_CHECK(ebar >= 0.0, "ebar must be >= 0");
  COMIMO_CHECK(b >= 1, "b must be >= 1");
  COMIMO_CHECK(mt >= 1 && mr >= 1, "antenna counts must be >= 1");
  // γ_b per unit ‖H‖²_F, under the configured transmit-energy
  // convention (see EbBarConvention).
  return ber_mqam_rayleigh_mimo(b, gamma_unit(ebar, mt), mt, mr);
}

double EbBarSolver::average_ber_quadrature(double ebar, int b, unsigned mt,
                                           unsigned mr,
                                           std::size_t points) const {
  const double gamma = gamma_unit(ebar, mt);
  const double a_coef = mqam_coefficient(b);
  // Write the integrand as Q(√(2·g·x)) with g = B(b)·γ/2; substituting
  // y = (1+g)·x concentrates the quadrature where the mass is and the
  // exponentials cancel analytically:
  //   E[Q(√(2gx))] = (1+g)^{-k} · E_y[ ½·erfcx(√(g·y/(1+g))) ]
  // with y ~ Gamma(k, 1) — a smooth, bounded integrand that the
  // Gamma-weighted Gauss–Laguerre rule resolves at any SNR.
  const double g = mqam_snr_factor(b) * gamma / 2.0;
  const double shape = static_cast<double>(mt) * mr;
  const double scale = 1.0 + g;
  const double inner = gamma_expectation(
      [&](double y) { return 0.5 * erfcx(std::sqrt(g * y / scale)); },
      shape, points);
  const double p = a_coef * std::pow(scale, -shape) * inner;
  return p > 1.0 ? 1.0 : p;
}

double EbBarSolver::average_ber_monte_carlo(double ebar, int b, unsigned mt,
                                            unsigned mr, std::size_t trials,
                                            std::uint64_t seed) const {
  COMIMO_CHECK(trials > 0, "need at least one trial");
  const double gamma = gamma_unit(ebar, mt);
  const double a_coef = mqam_coefficient(b);
  const double snr_factor = mqam_snr_factor(b);
  // Sharded across the pool: each trial draws its H from Rng(seed,
  // trial), so the estimate is bit-identical on any worker count.
  McConfig mc;
  mc.seed = seed;
  const McResult run = run_trials(
      trials, mc, [&](std::size_t, Rng& rng, McAccumulator& acc) {
        const CMatrix h = CMatrix::random_gaussian(mr, mt, rng);
        const double x = h.frobenius_norm2();
        acc.observe("q", a_coef * q_function(std::sqrt(snr_factor * gamma * x)));
      });
  const double p = run.acc.stat("q").mean();
  return p > 1.0 ? 1.0 : p;
}

double EbBarSolver::solve(double p, int b, unsigned mt, unsigned mr) const {
  COMIMO_CHECK(p > 0.0 && p < 1.0, "target BER must be in (0,1)");
  const double p_max = average_ber(0.0, b, mt, mr);
  if (p >= p_max) {
    // Zero energy already meets (or any energy exceeds) the target.
    throw NumericError("target BER not binding: p >= BER at zero energy");
  }
  // Bracket on a log-energy grid: BER is strictly decreasing in ē_b.
  const double lo = 1e-27;
  double hi = 1e-21;
  hi = expand_bracket(
      [&](double e) { return average_ber(e, b, mt, mr) - p; }, lo, hi, 60);
  RootOptions opts;
  opts.x_tol = 0.0;
  opts.f_tol = p * 1e-10;
  // Brent on log-energy for uniform relative resolution.
  const double log_root = brent(
      [&](double le) {
        return average_ber(std::exp(le), b, mt, mr) - p;
      },
      std::log(lo), std::log(hi), opts);
  const double ebar = std::exp(log_root);
  if (!std::isfinite(ebar) || ebar <= 0.0) {
    throw NumericError("ebbar solve produced a non-finite result");
  }
  return ebar;
}

}  // namespace comimo
