#include "comimo/energy/optimizer.h"

#include <cmath>
#include <limits>

#include "comimo/common/error.h"

namespace comimo {

ConstellationOptimizer::ConstellationOptimizer(const SystemParams& params,
                                               int b_min, int b_max,
                                               EbBarConvention convention)
    : params_(params),
      local_(params),
      mimo_(params, convention),
      b_min_(b_min),
      b_max_(b_max) {
  COMIMO_CHECK(b_min >= 1 && b_max >= b_min, "invalid constellation range");
}

ConstellationChoice ConstellationOptimizer::minimize(
    const std::function<double(int)>& objective) const {
  ConstellationChoice best;
  best.value = std::numeric_limits<double>::infinity();
  bool any_feasible = false;
  for (int b = b_min_; b <= b_max_; ++b) {
    double v;
    try {
      v = objective(b);
    } catch (const InfeasibleError&) {
      continue;
    } catch (const NumericError&) {
      continue;  // e.g. BER target unreachable at this b
    }
    any_feasible = true;
    if (v < best.value) {
      best.value = v;
      best.b = b;
    }
  }
  if (!any_feasible) {
    throw InfeasibleError("no feasible constellation size in range");
  }
  return best;
}

ConstellationChoice ConstellationOptimizer::min_mimo_tx_energy(
    double p, unsigned mt, unsigned mr, double distance_m,
    double bw_hz) const {
  ConstellationChoice best = minimize([&](int b) {
    return mimo_.tx_energy(b, p, mt, mr, distance_m, bw_hz).total();
  });
  best.breakdown.pa = mimo_.pa_energy(best.b, p, mt, mr, distance_m);
  best.breakdown.circuit = mimo_.tx_circuit_energy(best.b, bw_hz);
  return best;
}

ConstellationChoice ConstellationOptimizer::min_relay_energy(
    double p, unsigned mt, unsigned mr, double distance_m,
    double bw_hz) const {
  ConstellationChoice best = minimize([&](int b) {
    return mimo_.tx_energy(b, p, mt, mr, distance_m, bw_hz).total() +
           mimo_.rx_energy(b, bw_hz);
  });
  best.breakdown.pa = mimo_.pa_energy(best.b, p, mt, mr, distance_m);
  best.breakdown.circuit =
      mimo_.tx_circuit_energy(best.b, bw_hz) + mimo_.rx_energy(best.b, bw_hz);
  return best;
}

ConstellationChoice ConstellationOptimizer::min_local_tx_energy(
    double p, double d_m, double bw_hz) const {
  ConstellationChoice best = minimize([&](int b) {
    return local_.tx_energy(b, p, d_m, bw_hz).total();
  });
  best.breakdown = local_.tx_energy(best.b, p, d_m, bw_hz);
  return best;
}

ConstellationChoice ConstellationOptimizer::max_distance_for_energy(
    double energy_per_bit, double p, unsigned mt, unsigned mr, double bw_hz,
    bool include_rx_energy) const {
  // Maximize distance == minimize (-distance); per-b infeasibility (budget
  // below circuit floor) is skipped by minimize().
  ConstellationChoice best;
  try {
    best = minimize([&](int b) {
      const double extra =
          include_rx_energy ? mimo_.rx_energy(b, bw_hz) : 0.0;
      const double budget = energy_per_bit - extra;
      if (budget <= 0.0) {
        throw InfeasibleError("budget below receive energy");
      }
      return -mimo_.distance_for_energy(budget, b, p, mt, mr, bw_hz);
    });
  } catch (const InfeasibleError&) {
    return ConstellationChoice{};  // b = 0 marks "no feasible b"
  }
  best.value = -best.value;
  return best;
}

}  // namespace comimo
