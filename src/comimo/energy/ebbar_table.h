// Precomputed ē_b table.
//
// Algorithms 1 and 2 begin with: "Preprocessing — Calculate the value of
// ē_b(p, b, mt, mr) for a set of p, b, mt, and mr.  Load the table of ē_b
// in each SU node."  This class is that table: built once (in parallel),
// serializable to a plain-text format an SU node could carry, and
// queried during planning to pick the constellation size minimizing ē_b.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "comimo/energy/ebbar.h"

namespace comimo {

struct EbBarEntry {
  double p = 0.0;   ///< target BER
  int b = 0;        ///< constellation bits
  unsigned mt = 0;  ///< transmit branches
  unsigned mr = 0;  ///< receive branches
  double ebar = 0.0;  ///< required received energy/bit [J]
};

class EbBarTable {
 public:
  /// Grid specification; defaults cover the paper's sweeps.
  struct Spec {
    std::vector<double> ber_targets{1e-1, 5e-2, 1e-2, 5e-3, 1e-3, 5e-4, 1e-4};
    int b_min = 1;
    int b_max = 16;
    unsigned m_max = 4;  ///< mt, mr in 1..m_max
  };

  /// Builds the full grid with the given solver (parallelized over
  /// entries; deterministic).
  [[nodiscard]] static EbBarTable build(const EbBarSolver& solver,
                                        const Spec& spec);
  /// Builds with the default Spec.
  [[nodiscard]] static EbBarTable build(const EbBarSolver& solver);

  /// Exact lookup; nullopt when (p,b,mt,mr) is not a grid point.
  [[nodiscard]] std::optional<double> lookup(double p, int b, unsigned mt,
                                             unsigned mr) const;

  /// ē_b at the grid point with the *closest* log-BER to p (the paper's
  /// SU nodes quantize the target to the table).
  [[nodiscard]] double lookup_nearest(double p, int b, unsigned mt,
                                      unsigned mr) const;

  /// Constellation size minimizing ē_b for the given (p, mt, mr) — the
  /// selection rule stated in Algorithms 1–2.
  [[nodiscard]] EbBarEntry min_ebar_constellation(double p, unsigned mt,
                                                  unsigned mr) const;

  [[nodiscard]] const std::vector<EbBarEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const Spec& spec() const noexcept { return spec_; }

  /// Plain-text serialization ("p b mt mr ebar" per line).
  void save(std::ostream& os) const;
  [[nodiscard]] static EbBarTable load(std::istream& is);

 private:
  EbBarTable() = default;
  [[nodiscard]] std::size_t index_of(std::size_t pi, int b, unsigned mt,
                                     unsigned mr) const noexcept;

  Spec spec_;
  std::vector<EbBarEntry> entries_;
};

}  // namespace comimo
