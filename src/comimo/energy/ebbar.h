// The ē_b(p, b, mt, mr) solver — paper eqs. (5)–(6).
//
// ē_b is the required *received* energy per bit such that MQAM with b
// bits/symbol over an mt×mr i.i.d. flat-Rayleigh STBC link meets the
// target average BER p, where the average is over the channel matrix H
// with per-bit SNR γ_b = ‖H‖²_F·ē_b/(N0·mt).
//
// Because ‖H‖²_F ~ Gamma(mt·mr, 1), the expectation has the classical
// closed form in numeric/special.h; the solver inverts it with Brent on
// log ē_b.  A Gauss–Laguerre and a Monte-Carlo evaluator are included as
// independent cross-checks (used by the test suite and the ablation
// bench on quadrature order).
#pragma once

#include <cstdint>

#include "comimo/common/constants.h"

namespace comimo {

/// How the transmit-side energy normalization enters eq. (5).
///
/// * kPerAntennaSplit — the literal equation: γ_b = ‖H‖²·ē_b/(N0·mt),
///   i.e. ē_b is what each antenna would need alone and the array
///   splits it.  With this convention ē_b(mt,1) = mt·ē_b(1,mt) and the
///   1/mt of eq. (3) cancels exactly.
/// * kTotalEnergy — γ_b = ‖H‖²·ē_b/N0: ē_b is the total received
///   energy per bit regardless of how many antennas radiated it.  The
///   paper's Fig. 6 anchor values (D3/D2 = √m) are only consistent with
///   this convention, so the reproduction benches use it; see
///   EXPERIMENTS.md.
enum class EbBarConvention { kPerAntennaSplit, kTotalEnergy };

class EbBarSolver {
 public:
  explicit EbBarSolver(
      const SystemParams& params = {},
      EbBarConvention convention = EbBarConvention::kPerAntennaSplit);

  /// Average BER at received energy/bit `ebar` [J] — the forward map of
  /// eqs. (5)–(6), evaluated in closed form.
  [[nodiscard]] double average_ber(double ebar, int b, unsigned mt,
                                   unsigned mr) const;

  /// Same expectation by n-point generalized Gauss–Laguerre quadrature.
  [[nodiscard]] double average_ber_quadrature(double ebar, int b, unsigned mt,
                                              unsigned mr,
                                              std::size_t points = 64) const;

  /// Same expectation by Monte-Carlo over H draws (slow; tests only).
  [[nodiscard]] double average_ber_monte_carlo(double ebar, int b,
                                               unsigned mt, unsigned mr,
                                               std::size_t trials,
                                               std::uint64_t seed) const;

  /// Solves ē_b such that average_ber(ē_b) == p.  Throws NumericError if
  /// p is not attainable (p must be in (0, max BER)).
  [[nodiscard]] double solve(double p, int b, unsigned mt, unsigned mr) const;

  [[nodiscard]] const SystemParams& params() const noexcept { return params_; }
  [[nodiscard]] EbBarConvention convention() const noexcept {
    return convention_;
  }

 private:
  /// γ_b per unit ‖H‖²_F at received energy `ebar`.
  [[nodiscard]] double gamma_unit(double ebar, unsigned mt) const noexcept;

  SystemParams params_;
  EbBarConvention convention_;
};

}  // namespace comimo
