// Local (intra-cluster) energy per bit — paper eqs. (1)–(2).
//
//   e^Lt = e^Lt_PA + e^Lt_C
//   e^Lt_PA = (4/3)(1+α)·((2^b−1)/b)·ln(4(1−2^{−b/2})/(b·p))·G_d·N_f·σ²
//   e^Lt_C  = P_ct/(b·B) + P_syn·T_tr/n
//   e^Lr    = P_cr/(b·B) + P_syn·T_tr/n
//
// with G_d = G_1·d^κ·M_l the κ-power path gain over the cluster
// diameter d.  These are the AWGN (no fading) MQAM energy bounds of
// Cui et al. [12].
#pragma once

#include "comimo/common/constants.h"

namespace comimo {

/// Per-bit energy split into power-amplifier and circuit shares.
struct EnergyBreakdown {
  double pa = 0.0;       ///< power-amplifier energy per bit [J]
  double circuit = 0.0;  ///< circuit energy per bit [J]
  [[nodiscard]] double total() const noexcept { return pa + circuit; }
};

class LocalEnergyModel {
 public:
  explicit LocalEnergyModel(const SystemParams& params = {});

  /// PA energy per bit e^Lt_PA for constellation b, target BER p, over
  /// cluster diameter d [m].
  [[nodiscard]] double pa_energy(int b, double p, double d_m) const;

  /// Transmit circuit energy per bit e^Lt_C at bandwidth bw [Hz].
  [[nodiscard]] double tx_circuit_energy(int b, double bw_hz) const;

  /// Receive energy per bit e^Lr (circuit only, eq. (2)).
  [[nodiscard]] double rx_energy(int b, double bw_hz) const;

  /// Full transmit energy per bit e^Lt (eq. (1)).
  [[nodiscard]] EnergyBreakdown tx_energy(int b, double p, double d_m,
                                          double bw_hz) const;

  [[nodiscard]] const SystemParams& params() const noexcept { return params_; }

 private:
  SystemParams params_;
};

}  // namespace comimo
