#include "comimo/energy/local_energy.h"

#include <cmath>

#include "comimo/common/error.h"

namespace comimo {

LocalEnergyModel::LocalEnergyModel(const SystemParams& params)
    : params_(params) {}

double LocalEnergyModel::pa_energy(int b, double p, double d_m) const {
  COMIMO_CHECK(b >= 1, "b must be >= 1");
  COMIMO_CHECK(p > 0.0 && p < 1.0, "BER must be in (0,1)");
  COMIMO_CHECK(d_m >= 0.0, "distance must be >= 0");
  const double bd = static_cast<double>(b);
  const double alpha = params_.pa_overhead(b);
  const double mterm = (std::pow(2.0, bd) - 1.0) / bd;
  const double log_arg = 4.0 * (1.0 - std::pow(2.0, -bd / 2.0)) / (bd * p);
  COMIMO_CHECK(log_arg > 1.0,
               "BER target too loose for eq. (1)'s log term");
  return 4.0 / 3.0 * (1.0 + alpha) * mterm * std::log(log_arg) *
         params_.local_gain(d_m) * params_.noise_figure *
         params_.sigma2_w_per_hz;
}

double LocalEnergyModel::tx_circuit_energy(int b, double bw_hz) const {
  COMIMO_CHECK(b >= 1 && bw_hz > 0.0, "invalid rate parameters");
  return params_.p_ct_w / (static_cast<double>(b) * bw_hz) +
         params_.p_syn_w * params_.t_tr_s / params_.n_bits;
}

double LocalEnergyModel::rx_energy(int b, double bw_hz) const {
  COMIMO_CHECK(b >= 1 && bw_hz > 0.0, "invalid rate parameters");
  return params_.p_cr_w / (static_cast<double>(b) * bw_hz) +
         params_.p_syn_w * params_.t_tr_s / params_.n_bits;
}

EnergyBreakdown LocalEnergyModel::tx_energy(int b, double p, double d_m,
                                            double bw_hz) const {
  EnergyBreakdown e;
  e.pa = pa_energy(b, p, d_m);
  e.circuit = tx_circuit_energy(b, bw_hz);
  return e;
}

}  // namespace comimo
