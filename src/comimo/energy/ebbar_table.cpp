#include "comimo/energy/ebbar_table.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "comimo/common/error.h"
#include "comimo/common/parallel.h"

namespace comimo {

std::size_t EbBarTable::index_of(std::size_t pi, int b, unsigned mt,
                                 unsigned mr) const noexcept {
  const auto nb = static_cast<std::size_t>(spec_.b_max - spec_.b_min + 1);
  const std::size_t nm = spec_.m_max;
  const auto bi = static_cast<std::size_t>(b - spec_.b_min);
  return ((pi * nb + bi) * nm + (mt - 1)) * nm + (mr - 1);
}

EbBarTable EbBarTable::build(const EbBarSolver& solver) {
  return build(solver, Spec{});
}

EbBarTable EbBarTable::build(const EbBarSolver& solver, const Spec& spec) {
  COMIMO_CHECK(!spec.ber_targets.empty(), "table needs BER targets");
  COMIMO_CHECK(spec.b_min >= 1 && spec.b_max >= spec.b_min,
               "invalid constellation range");
  COMIMO_CHECK(spec.m_max >= 1, "invalid antenna range");
  EbBarTable table;
  table.spec_ = spec;
  const auto nb = static_cast<std::size_t>(spec.b_max - spec.b_min + 1);
  const std::size_t nm = spec.m_max;
  const std::size_t total = spec.ber_targets.size() * nb * nm * nm;
  table.entries_.resize(total);

  parallel_for(total, [&](std::size_t idx) {
    // Invert index_of's mixed radix: idx = ((pi*nb + bi)*nm + mt-1)*nm + mr-1.
    const std::size_t mr = idx % nm + 1;
    std::size_t rest = idx / nm;
    const std::size_t mt = rest % nm + 1;
    rest /= nm;
    const int b = static_cast<int>(rest % nb) + spec.b_min;
    const std::size_t pi = rest / nb;
    EbBarEntry& e = table.entries_[idx];
    e.p = spec.ber_targets[pi];
    e.b = b;
    e.mt = static_cast<unsigned>(mt);
    e.mr = static_cast<unsigned>(mr);
    e.ebar = solver.solve(e.p, b, e.mt, e.mr);
  });
  return table;
}

std::optional<double> EbBarTable::lookup(double p, int b, unsigned mt,
                                         unsigned mr) const {
  if (b < spec_.b_min || b > spec_.b_max || mt < 1 || mt > spec_.m_max ||
      mr < 1 || mr > spec_.m_max) {
    return std::nullopt;
  }
  for (std::size_t pi = 0; pi < spec_.ber_targets.size(); ++pi) {
    if (spec_.ber_targets[pi] == p) {
      return entries_[index_of(pi, b, mt, mr)].ebar;
    }
  }
  return std::nullopt;
}

double EbBarTable::lookup_nearest(double p, int b, unsigned mt,
                                  unsigned mr) const {
  COMIMO_CHECK(p > 0.0, "BER must be positive");
  COMIMO_CHECK(b >= spec_.b_min && b <= spec_.b_max, "b outside table");
  COMIMO_CHECK(mt >= 1 && mt <= spec_.m_max && mr >= 1 && mr <= spec_.m_max,
               "antenna count outside table");
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t pi = 0; pi < spec_.ber_targets.size(); ++pi) {
    const double d = std::abs(std::log(spec_.ber_targets[pi]) - std::log(p));
    if (d < best_d) {
      best_d = d;
      best = pi;
    }
  }
  return entries_[index_of(best, b, mt, mr)].ebar;
}

EbBarEntry EbBarTable::min_ebar_constellation(double p, unsigned mt,
                                              unsigned mr) const {
  EbBarEntry best;
  best.ebar = std::numeric_limits<double>::infinity();
  for (int b = spec_.b_min; b <= spec_.b_max; ++b) {
    const double e = lookup_nearest(p, b, mt, mr);
    if (e < best.ebar) {
      best = EbBarEntry{p, b, mt, mr, e};
    }
  }
  return best;
}

void EbBarTable::save(std::ostream& os) const {
  os << "# comimo ebbar table v1\n";
  os << spec_.b_min << " " << spec_.b_max << " " << spec_.m_max << " "
     << spec_.ber_targets.size() << "\n";
  os.precision(17);
  for (const double p : spec_.ber_targets) os << p << " ";
  os << "\n";
  for (const auto& e : entries_) {
    os << e.p << " " << e.b << " " << e.mt << " " << e.mr << " " << e.ebar
       << "\n";
  }
}

EbBarTable EbBarTable::load(std::istream& is) {
  std::string header;
  std::getline(is, header);
  COMIMO_CHECK(header == "# comimo ebbar table v1",
               "unrecognized ebbar table format");
  EbBarTable table;
  std::size_t num_targets = 0;
  is >> table.spec_.b_min >> table.spec_.b_max >> table.spec_.m_max >>
      num_targets;
  COMIMO_CHECK(is.good(), "truncated ebbar table header");
  table.spec_.ber_targets.resize(num_targets);
  for (auto& p : table.spec_.ber_targets) is >> p;
  const auto nb =
      static_cast<std::size_t>(table.spec_.b_max - table.spec_.b_min + 1);
  const std::size_t nm = table.spec_.m_max;
  const std::size_t total = num_targets * nb * nm * nm;
  table.entries_.resize(total);
  for (auto& e : table.entries_) {
    is >> e.p >> e.b >> e.mt >> e.mr >> e.ebar;
    COMIMO_CHECK(!is.fail(), "truncated ebbar table body");
  }
  return table;
}

}  // namespace comimo
