// Long-haul cooperative MIMO link energy per bit — paper eqs. (3)–(4).
//
//   e^MIMOt(mt, mr) = e^MIMOt_PA + e^MIMOt_C
//   e^MIMOt_PA = (1/mt)(1+α)·ē_b(p,b,mt,mr)·(4πD)²/(GtGr·λ²)·M_l·N_f
//   e^MIMOt_C  = (P_ct + P_syn)/(b·B)
//   e^MIMOr    = (P_cr + P_syn)/(b·B)
//
// ē_b comes from the EbBarSolver (or a preloaded EbBarTable via the
// overload taking an explicit ē_b).
#pragma once

#include "comimo/common/constants.h"
#include "comimo/energy/ebbar.h"
#include "comimo/energy/local_energy.h"

namespace comimo {

class MimoEnergyModel {
 public:
  explicit MimoEnergyModel(
      const SystemParams& params = {},
      EbBarConvention convention = EbBarConvention::kPerAntennaSplit);

  /// PA energy per bit at each transmitting node, eq. (3), with ē_b
  /// solved internally.
  [[nodiscard]] double pa_energy(int b, double p, unsigned mt, unsigned mr,
                                 double distance_m) const;

  /// PA energy per bit with a caller-provided ē_b (table-driven path —
  /// what the SU nodes do after Preprocessing).
  [[nodiscard]] double pa_energy_with_ebar(int b, double ebar,
                                           unsigned mt,
                                           double distance_m) const;

  /// Transmit circuit energy per bit e^MIMOt_C.
  [[nodiscard]] double tx_circuit_energy(int b, double bw_hz) const;

  /// Receive energy per bit e^MIMOr, eq. (4).
  [[nodiscard]] double rx_energy(int b, double bw_hz) const;

  /// Full per-node transmit energy e^MIMOt(mt, mr), eq. (3).
  [[nodiscard]] EnergyBreakdown tx_energy(int b, double p, unsigned mt,
                                          unsigned mr, double distance_m,
                                          double bw_hz) const;

  /// Inverts eq. (3) for distance: the D at which the per-node transmit
  /// energy equals `energy_per_bit` (given b, p, mt, mr, B).  Throws
  /// InfeasibleError when the budget doesn't even cover the circuit
  /// energy.
  [[nodiscard]] double distance_for_energy(double energy_per_bit, int b,
                                           double p, unsigned mt, unsigned mr,
                                           double bw_hz) const;

  [[nodiscard]] const SystemParams& params() const noexcept { return params_; }
  [[nodiscard]] const EbBarSolver& solver() const noexcept { return solver_; }

 private:
  SystemParams params_;
  EbBarSolver solver_;
};

}  // namespace comimo
