#include "comimo/energy/outage.h"

#include <cmath>

#include "comimo/common/error.h"
#include "comimo/numeric/special.h"

namespace comimo {

OutageAnalyzer::OutageAnalyzer(const SystemParams& params)
    : params_(params) {}

double OutageAnalyzer::outage_probability(double mean_snr, double snr_th,
                                          unsigned mt, unsigned mr) const {
  COMIMO_CHECK(mean_snr > 0.0 && snr_th > 0.0, "SNRs must be positive");
  COMIMO_CHECK(mt >= 1 && mr >= 1, "antenna counts must be >= 1");
  const double k = static_cast<double>(mt) * mr;
  return gamma_p(k, snr_th / mean_snr);
}

double OutageAnalyzer::required_mean_snr(double p_out, double snr_th,
                                         unsigned mt, unsigned mr) const {
  COMIMO_CHECK(p_out > 0.0 && p_out < 1.0, "outage target in (0,1)");
  COMIMO_CHECK(snr_th > 0.0, "threshold must be positive");
  COMIMO_CHECK(mt >= 1 && mr >= 1, "antenna counts must be >= 1");
  const double k = static_cast<double>(mt) * mr;
  // P(k, snr_th/γ̄) = p_out  ⇒  γ̄ = snr_th / P⁻¹(k, p_out).
  const double x = gamma_p_inverse(k, p_out);
  COMIMO_CHECK(x > 0.0, "degenerate inverse");
  return snr_th / x;
}

double OutageAnalyzer::required_energy(double p_out, double gamma_th,
                                       unsigned mt, unsigned mr) const {
  // γ_b = ‖H‖²·ē/(N0·mt): outage when ‖H‖² < γ_th·N0·mt/ē, so the
  // required per-unit-‖H‖² SNR is γ̄ = ē/(N0·mt).
  const double mean_snr = required_mean_snr(p_out, gamma_th, mt, mr);
  return mean_snr * params_.n0_w_per_hz * static_cast<double>(mt);
}

double OutageAnalyzer::empirical_diversity_order(double snr_th, unsigned mt,
                                                 unsigned mr) const {
  // Slope of log P_out between two deep-SNR points.
  const double g1 = snr_th * 1e3;
  const double g2 = snr_th * 1e4;
  const double p1 = outage_probability(g1, snr_th, mt, mr);
  const double p2 = outage_probability(g2, snr_th, mt, mr);
  return (std::log(p1) - std::log(p2)) / (std::log(g2) - std::log(g1));
}

}  // namespace comimo
