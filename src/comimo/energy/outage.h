// Outage analysis for the cooperative diversity links.
//
// A companion view to the average-BER design of eqs. (5)–(6): instead
// of the mean error rate, the probability that the instantaneous
// post-combining SNR falls below a threshold,
//
//   P_out = P( ‖H‖²_F · γ̄ < γ_th ) = P( x < γ_th/γ̄ ),  x ~ Gamma(mt·mr, 1)
//         = P(k, γ_th/γ̄)                     (regularized incomplete gamma)
//
// which exposes the diversity order directly (P_out ∝ γ̄^{-k} at high
// SNR) and supports outage-constrained link budgeting: the γ̄ (and
// hence ē_b) needed to hold P_out below a target.
#pragma once

#include "comimo/common/constants.h"

namespace comimo {

class OutageAnalyzer {
 public:
  explicit OutageAnalyzer(const SystemParams& params = {});

  /// Outage probability of an mt×mr Rayleigh STBC link at mean
  /// per-branch SNR `mean_snr` (linear) and threshold `snr_th` (linear).
  [[nodiscard]] double outage_probability(double mean_snr, double snr_th,
                                          unsigned mt, unsigned mr) const;

  /// Mean SNR (linear) needed to keep outage at `p_out` for threshold
  /// `snr_th` — the closed-form inverse via gamma_p_inverse.
  [[nodiscard]] double required_mean_snr(double p_out, double snr_th,
                                         unsigned mt, unsigned mr) const;

  /// Received energy per bit ē_out [J] such that the instantaneous
  /// per-bit SNR γ_b = ‖H‖²·ē/(N0·mt) exceeds `gamma_th` with
  /// probability 1 − p_out.  The outage-constrained analogue of
  /// EbBarSolver::solve.
  [[nodiscard]] double required_energy(double p_out, double gamma_th,
                                       unsigned mt, unsigned mr) const;

  /// Diversity order estimate from two high-SNR outage evaluations
  /// (slope of log P_out vs log γ̄) — equals mt·mr for these links;
  /// exposed for tests and the ablation bench.
  [[nodiscard]] double empirical_diversity_order(double snr_th, unsigned mt,
                                                 unsigned mr) const;

 private:
  SystemParams params_;
};

}  // namespace comimo
