// Noise-floor compliance for underlay operation.
//
// The underlay constraint (§1, §4): "the transmitted spectral density of
// the SUs falls below the noise floor at the primary receivers."  Given a
// PA energy per bit, the radiated power is P = e_PA·(b·B)/(1+α) (the α
// overhead is drain inefficiency, not radiated), the received PSD at a
// primary receiver distance D is P/(L(D)·B), and the floor is the thermal
// density σ² scaled by the PU receiver's noise figure.
#pragma once

#include "comimo/common/constants.h"

namespace comimo {

struct NoiseFloorReport {
  double radiated_power_w = 0.0;   ///< transmit power at the SU antenna
  double received_psd_w_hz = 0.0;  ///< PSD at the primary receiver
  double noise_floor_w_hz = 0.0;   ///< thermal floor at the PU
  double margin_db = 0.0;          ///< floor/PSD in dB (positive = compliant)
  [[nodiscard]] bool compliant() const noexcept { return margin_db >= 0.0; }
};

class NoiseFloorAnalyzer {
 public:
  explicit NoiseFloorAnalyzer(const SystemParams& params = {});

  /// Evaluates the constraint for an SU transmitting with PA energy/bit
  /// `e_pa_per_bit` at constellation b and bandwidth bw, with the primary
  /// receiver `pu_distance_m` away (free-space long-haul loss).
  [[nodiscard]] NoiseFloorReport analyze(double e_pa_per_bit, int b,
                                         double bw_hz,
                                         double pu_distance_m) const;

  /// Thermal noise floor PSD at the primary receiver [W/Hz].
  [[nodiscard]] double noise_floor_w_per_hz() const noexcept;

 private:
  SystemParams params_;
};

}  // namespace comimo
