// Constellation-size optimization.
//
// §6: "the minimum value of E_S is found by changing constellation size b
// from 1 to 16".  The variable-rate system trades PA energy (grows with
// b) against circuit energy (shrinks with b, since the same bits take
// fewer symbols); these helpers search the discrete b range for the
// minimum-energy or maximum-distance operating point.
#pragma once

#include <functional>

#include "comimo/energy/local_energy.h"
#include "comimo/energy/mimo_energy.h"

namespace comimo {

/// Result of a constellation search.
struct ConstellationChoice {
  int b = 0;                  ///< optimal bits/symbol
  double value = 0.0;         ///< optimal objective value
  EnergyBreakdown breakdown;  ///< energy split at the optimum (when
                              ///< the objective is an energy)
};

class ConstellationOptimizer {
 public:
  explicit ConstellationOptimizer(
      const SystemParams& params = {},
      int b_min = kMinConstellationBits,
      int b_max = kMaxConstellationBits,
      EbBarConvention convention = EbBarConvention::kPerAntennaSplit);

  /// Minimizes the per-node long-haul transmit energy e^MIMOt over b.
  [[nodiscard]] ConstellationChoice min_mimo_tx_energy(
      double p, unsigned mt, unsigned mr, double distance_m,
      double bw_hz) const;

  /// Minimizes e^MIMOt(mt,mr) + e^MIMOr — the per-SU relay energy E_S of
  /// Algorithm 1 (transmit on the MISO leg + receive on the SIMO leg).
  [[nodiscard]] ConstellationChoice min_relay_energy(
      double p, unsigned mt, unsigned mr, double distance_m,
      double bw_hz) const;

  /// Minimizes the local (intra-cluster) transmit energy e^Lt over b.
  [[nodiscard]] ConstellationChoice min_local_tx_energy(double p, double d_m,
                                                        double bw_hz) const;

  /// Maximizes distance_for_energy over b — the largest link length
  /// reachable within an energy budget (used for D2/D3 in Algorithm 1).
  /// When `include_rx_energy` is true the budget must also cover
  /// e^MIMOr(b) (the relay's reception on the other leg, as in E_S of
  /// Algorithm 1).  Returns b = 0 and value = 0 when no b is feasible.
  [[nodiscard]] ConstellationChoice max_distance_for_energy(
      double energy_per_bit, double p, unsigned mt, unsigned mr,
      double bw_hz, bool include_rx_energy = false) const;

  /// Generic discrete search; `objective(b)` may throw InfeasibleError to
  /// mark b infeasible.  Throws InfeasibleError if every b is infeasible.
  [[nodiscard]] ConstellationChoice minimize(
      const std::function<double(int)>& objective) const;

  [[nodiscard]] int b_min() const noexcept { return b_min_; }
  [[nodiscard]] int b_max() const noexcept { return b_max_; }

 private:
  SystemParams params_;
  LocalEnergyModel local_;
  MimoEnergyModel mimo_;
  int b_min_;
  int b_max_;
};

}  // namespace comimo
