// Quick-start for the long-lived simulation service.
//
// Default mode is self-contained (and is what the ctest smoke run
// exercises): start a daemon on a private AF_UNIX socket, drive a short
// session through ServiceClient — ping, a cached Eb-bar lookup, a
// sharded waveform BER job, a node-churn round — print the replies and
// the daemon's admission/latency stats, and shut down cleanly.
//
//   ./example_service_daemon                # demo session, then exit
//   ./example_service_daemon --serve /tmp/comimo.sock [--seconds 30]
//
// --serve keeps the daemon listening on the given socket so external
// clients can connect (see README); it exits after --seconds (default
// 30) so unattended runs always terminate.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "comimo/common/table.h"
#include "comimo/service/client.h"
#include "comimo/service/daemon.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

using namespace comimo;
using namespace comimo::service;

namespace {

ServiceConfig demo_config(std::string socket) {
  ServiceConfig cfg;
  cfg.socket_path = std::move(socket);
  cfg.service_workers = 2;
  cfg.mc_threads = 2;
  cfg.queue_capacity = 16;
  cfg.ebbar_spec.ber_targets = {1e-2, 1e-3};
  cfg.ebbar_spec.b_min = 1;
  cfg.ebbar_spec.b_max = 4;
  cfg.ebbar_spec.m_max = 2;
  return cfg;
}

std::string first_line(const std::string& text) {
  const auto nl = text.find('\n');
  return nl == std::string::npos ? text : text.substr(0, nl);
}

int run_demo() {
#if defined(__unix__) || defined(__APPLE__)
  const std::string socket =
      "/tmp/comimo_svc_demo_" + std::to_string(::getpid()) + ".sock";
#else
  const std::string socket = "comimo_svc_demo.sock";
#endif
  ServiceDaemon daemon(demo_config(socket));
  std::cout << "daemon listening on " << socket << "\n\n";

  ServiceClient client(socket, /*session_seed=*/42);
  std::cout << "session established (seed 42); hello-ack:";
  for (const auto& [key, value] : client.hello_ack()) {
    std::cout << " " << key << "=" << value;
  }
  std::cout << "\n\n";

  const JobSpec jobs[] = {
      {"ping", {}},
      {"ebbar_min", {{"p", "1e-3"}, {"mt", "2"}, {"mr", "2"}}},
      {"waveform_ber",
       {{"b", "2"},
        {"mt", "2"},
        {"mr", "2"},
        {"blocks", "800"},
        {"gamma_b_db", "8"},
        {"seed", "7"},
        {"shards", "2"}}},
      {"net_churn",
       {{"nodes", "300"},
        {"rounds", "4"},
        {"kill_per_round", "12"},
        {"seed", "5"}}},
  };
  for (const auto& spec : jobs) {
    const auto reply = client.call(spec);
    std::cout << "== " << spec.kind << " -> " << frame_type_name(reply.type)
              << " (id " << reply.id << ")\n"
              << reply.body << "\n";
  }

  std::cout << "== obs metrics dump (first line): "
            << first_line(client.metrics_dump()) << "\n\n";

  const auto stats = daemon.stats();
  TextTable table({"stat", "value"});
  table.add_row({"jobs submitted", std::to_string(stats.jobs_submitted)});
  table.add_row({"jobs accepted", std::to_string(stats.jobs_accepted)});
  table.add_row({"jobs rejected", std::to_string(stats.jobs_rejected)});
  table.add_row({"jobs completed", std::to_string(stats.jobs_completed)});
  table.add_row({"latency p50 [ms]", TextTable::fmt(stats.latency_p50_ms)});
  table.add_row({"latency p99 [ms]", TextTable::fmt(stats.latency_p99_ms)});
  table.print(std::cout);

  daemon.stop();
  std::cout << "\ndaemon stopped cleanly\n";
  return 0;
}

int run_serve(const std::string& socket, unsigned seconds) {
  ServiceDaemon daemon(demo_config(socket));
  std::cout << "daemon serving on " << socket << " for " << seconds
            << " s\n";
  std::this_thread::sleep_for(std::chrono::seconds(seconds));
  const auto stats = daemon.stats();
  daemon.stop();
  std::cout << "served " << stats.sessions_opened << " sessions, "
            << stats.jobs_completed << " jobs completed, "
            << stats.jobs_rejected << " rejected\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (!sockets_available()) {
    std::cout << "service_daemon: no AF_UNIX sockets on this platform\n";
    return 0;
  }
  std::string serve_path;
  unsigned seconds = 30;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
      serve_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    }
  }
  return serve_path.empty() ? run_demo() : run_serve(serve_path, seconds);
}
