// Example: a multi-hop underlay secondary network (§2 + §4).
//
// 60 secondary users scattered over a 500 m field self-organize into a
// CoMIMONet: d-clusters with elected heads, an MST routing backbone,
// CSMA/CA at the link layer.  A source node streams data to a sink
// across cooperative MIMO hops; the program reports the topology, the
// per-hop plans (scheme, constellation, energies), noise-floor
// compliance at a nearby primary receiver, MAC statistics for the
// backbone's contention, and battery depletion after a day of traffic.
#include <algorithm>
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/net/csma_ca.h"
#include "comimo/net/hop_scheduler.h"
#include "comimo/net/routing.h"
#include "comimo/underlay/compliance.h"

namespace {
const char* kind_name(comimo::CoopLink::Kind k) {
  using Kind = comimo::CoopLink::Kind;
  switch (k) {
    case Kind::kSiso:
      return "SISO";
    case Kind::kSimo:
      return "SIMO";
    case Kind::kMiso:
      return "MISO";
    case Kind::kMimo:
      return "MIMO";
  }
  return "?";
}
}  // namespace

int main() {
  using namespace comimo;
  std::cout << "=== underlay CoMIMONet simulation ===\n\n";

  // --- build the network -------------------------------------------------
  // 20 deployment groups of 3 SUs each — the grouped placements the
  // cooperative schemes assume.
  const auto nodes = clustered_field(20, 3, 6.0, 500.0, 500.0, /*seed=*/7);
  CoMimoNetConfig net_cfg;
  net_cfg.communication_range_m = 40.0;
  net_cfg.cluster_diameter_m = 16.0;
  net_cfg.link_range_m = 260.0;
  CoMimoNet net(nodes, net_cfg);
  const CooperativeRouter router(net, SystemParams{}, 1e-3, 40e3);

  std::cout << "field: 60 SUs over 500x500 m -> " << net.clusters().size()
            << " clusters, " << net.links().size()
            << " cooperative links, backbone of "
            << router.backbone().tree_edges().size() << " edges in "
            << router.backbone().num_components() << " component(s)\n\n";

  // --- pick the farthest routable pair ------------------------------------
  NodeId src = 0;
  NodeId dst = 0;
  double best = -1.0;
  for (const auto& a : net.nodes()) {
    for (const auto& b : net.nodes()) {
      if (!router.backbone().connected(net.cluster_of(a.id),
                                       net.cluster_of(b.id))) {
        continue;
      }
      const double d = distance(a.position, b.position);
      if (d > best) {
        best = d;
        src = a.id;
        dst = b.id;
      }
    }
  }
  std::cout << "routing node " << src << " -> node " << dst << " ("
            << TextTable::fmt(best, 0) << " m apart)\n\n";
  const RouteReport route = router.route(src, dst);

  TextTable hops({"hop", "clusters", "scheme", "D [m]", "b",
                  "total energy [J/bit]", "peak PA [J/bit]",
                  "PU margin vs SISO [dB]"});
  const UnderlayComplianceChecker checker;
  for (std::size_t i = 0; i < route.hops.size(); ++i) {
    const auto& hop = route.hops[i];
    const auto compliance = checker.check(hop.plan, 80.0);
    hops.add_row({std::to_string(i + 1),
                  std::to_string(hop.from) + "->" + std::to_string(hop.to),
                  kind_name(hop.kind),
                  TextTable::fmt(hop.plan.config.hop_distance_m, 0),
                  std::to_string(hop.plan.b),
                  TextTable::sci(hop.plan.total_energy()),
                  TextTable::sci(hop.plan.peak_pa()),
                  TextTable::fmt(compliance.relative_to_siso_db, 1)});
  }
  hops.print(std::cout);
  std::cout << "route total: " << TextTable::sci(route.total_energy_per_bit)
            << " J/bit over " << route.num_hops() << " hops\n\n";

  // --- TDMA schedule of the first hop -------------------------------------
  if (!route.hops.empty()) {
    const auto& hop = route.hops.front();
    const HopScheduler scheduler;
    const HopSchedule sched = scheduler.schedule(
        hop.plan, net.clusters()[hop.from].members,
        net.clusters()[hop.to].members, /*bits=*/12000);
    std::cout << "hop 1 TDMA schedule for a 1500-byte frame (makespan "
              << TextTable::fmt(sched.makespan_s * 1e3, 2) << " ms, "
              << sched.slots.size() << " slots, sequential: "
              << (sched.is_sequential() ? "yes" : "no") << ")\n\n";
  }

  // --- MAC contention on the backbone --------------------------------------
  std::vector<CsmaStation> stations;
  for (const auto& c : net.clusters()) {
    if (stations.size() >= 12) break;
    stations.push_back({c.head, 8.0, 12000});
  }
  CsmaCaConfig mac_cfg;
  mac_cfg.seed = 99;
  CsmaCaSimulator mac(mac_cfg, stations);
  const CsmaCaStats mac_stats = mac.run(10.0);
  std::cout << "CSMA/CA over " << stations.size()
            << " contending heads: delivery "
            << TextTable::pct(mac_stats.delivery_ratio()) << ", "
            << mac_stats.collisions << " collisions, mean access delay "
            << TextTable::fmt(mac_stats.mean_access_delay_s * 1e3, 2)
            << " ms, channel busy "
            << TextTable::pct(mac_stats.channel_busy_fraction) << "\n\n";

  // --- battery depletion ----------------------------------------------------
  router.apply_battery_drain(net, route, /*bits=*/5e6);
  double min_battery = 1.0;
  NodeId weakest = 0;
  for (const auto& n : net.nodes()) {
    if (n.battery_j < min_battery) {
      min_battery = n.battery_j;
      weakest = n.id;
    }
  }
  std::cout << "after 5 Mbit of traffic the weakest node is " << weakest
            << " at " << TextTable::fmt(min_battery, 4)
            << " J — when it dips, the heads re-elect and the backbone"
               " reconfigures (§2.1).\n";
  return 0;
}
