// Quickstart: the three cooperative MIMO paradigms in ~80 lines.
//
// Builds the ē_b table an SU node would carry, plans one overlay relay
// deployment, one underlay hop with its noise-floor compliance check,
// and one interweave null-steering pair.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/energy/ebbar_table.h"
#include "comimo/interweave/pair_beamformer.h"
#include "comimo/overlay/distance_planner.h"
#include "comimo/underlay/compliance.h"

int main() {
  using namespace comimo;
  std::cout << "=== comimo quickstart ===\n\n";

  // --- Preprocessing (Algorithms 1-2): the ē_b table -------------------
  const EbBarSolver solver;
  EbBarTable::Spec spec;
  spec.ber_targets = {5e-3, 1e-3, 5e-4};
  spec.b_max = 8;
  spec.m_max = 3;
  const EbBarTable table = EbBarTable::build(solver, spec);
  const EbBarEntry best = table.min_ebar_constellation(1e-3, 2, 3);
  std::cout << "ebar table: " << table.entries().size() << " entries; "
            << "min-energy constellation for (p=1e-3, 2x3 MIMO): b="
            << best.b << ", ebar=" << TextTable::sci(best.ebar) << " J\n\n";

  // --- Overlay: how far can relays sit from the primary pair? ----------
  OverlayDistancePlanner overlay;
  OverlayDistanceQuery q;
  q.d1_m = 250.0;
  q.num_relays = 3;
  q.bandwidth_hz = 40e3;
  const OverlayDistanceResult r = overlay.plan(q);
  std::cout << "overlay: Pt->Pr at " << q.d1_m << " m (BER "
            << q.p_primary << ") gives budget E1="
            << TextTable::sci(r.e1) << " J/bit;\n"
            << "  3 SUs can relay at 10x better BER from "
            << TextTable::fmt(r.d2_m, 1) << " m away from Pt and "
            << TextTable::fmt(r.d3_m, 1) << " m away from Pr\n\n";

  // --- Underlay: one cooperative hop + compliance -----------------------
  UnderlayCooperativeHop hop_planner;
  UnderlayHopConfig hop;
  hop.mt = 2;
  hop.mr = 3;
  hop.hop_distance_m = 200.0;
  const UnderlayHopPlan plan = hop_planner.plan(hop);
  UnderlayComplianceChecker checker;
  const UnderlayComplianceReport compliance = checker.check(plan, 50.0);
  std::cout << "underlay: 2x3 hop over 200 m picks b=" << plan.b
            << ", total PA energy "
            << TextTable::sci(plan.total_pa()) << " J/bit;\n"
            << "  peak PA energy sits "
            << TextTable::fmt(compliance.relative_to_siso_db, 1)
            << " dB below the non-cooperative PU reference (the paper's"
               " criterion; compliant: "
            << (compliance.paper_compliant() ? "yes" : "no") << ")\n\n";

  // --- Interweave: null toward the PU, gain toward the SU --------------
  const PairGeometry geom{Vec2{0.0, 7.5}, Vec2{0.0, -7.5}};
  const Vec2 pu{0.0, -150.0};
  const Vec2 sr{150.0, 0.0};
  const NullSteeringPair pair(geom, /*wavelength=*/30.0, pu);
  std::cout << "interweave: pair with delta=" << TextTable::fmt(pair.delta(), 4)
            << " rad leaves residual " << TextTable::sci(pair.residual_at_pu())
            << " at the PU while delivering amplitude "
            << TextTable::fmt(pair.amplitude_at(sr), 3)
            << " (SISO = 1.0) at the secondary receiver\n";
  return 0;
}
