// Example: interweave spectrum sharing with pairwise null-steering
// beamforming (§5 / Algorithm 3).
//
// A cluster of 6 secondary transmitters wants to reuse a primary
// channel while a primary receiver is active nearby.  The head scores
// the sensed primary receivers, picks the one Algorithm 3 prefers,
// forms ⌊mt/2⌋ null-steered pairs, and this program reports the
// residual interference at the PU, the diversity amplitude at the
// secondary receiver, and the pattern around the compass.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/common/units.h"
#include "comimo/interweave/pattern.h"
#include "comimo/interweave/pu_selection.h"
#include "comimo/numeric/rng.h"

int main() {
  using namespace comimo;
  std::cout << "=== interweave null-steering beamformer ===\n\n";

  const double wavelength = 0.1224;  // 2.45 GHz
  // Six SU transmitters in a tight cluster (λ/2-ish spacing), paired in
  // order; the secondary receiver sits 40 m east.
  std::vector<Vec2> su;
  for (int i = 0; i < 6; ++i) {
    su.push_back(Vec2{0.0, (i - 2.5) * wavelength / 2.0});
  }
  const Vec2 st_center{0.0, 0.0};
  const Vec2 sr{40.0, 0.0};

  // Sensed primary receivers around the cluster.
  Rng rng(17);
  std::vector<Vec2> pus;
  for (int i = 0; i < 6; ++i) {
    pus.push_back(rng.point_in_disk(st_center, 120.0));
  }

  const auto scores = score_pu_candidates(st_center, sr, pus);
  TextTable cand({"rank", "PU position", "distance [m]",
                  "angle vs Sr [deg]", "score"});
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const auto& s = scores[i];
    cand.add_row({std::to_string(i + 1),
                  "(" + TextTable::fmt(pus[s.index].x, 0) + ", " +
                      TextTable::fmt(pus[s.index].y, 0) + ")",
                  TextTable::fmt(s.distance_m, 1),
                  TextTable::fmt(rad_to_deg(s.angle_rad), 1),
                  TextTable::fmt(s.score, 3)});
  }
  std::cout << "Algorithm 3 step 1 — PU candidates, best first:\n";
  cand.print(std::cout);

  const Vec2 chosen = pus[scores.front().index];
  const PairedBeamformer bf(su, wavelength, chosen);
  std::cout << "\nformed " << bf.num_pairs()
            << " null-steered pairs toward PU at ("
            << TextTable::fmt(chosen.x, 0) << ", "
            << TextTable::fmt(chosen.y, 0) << ")\n"
            << "residual at PU: " << TextTable::sci(bf.residual_at_pu())
            << "  (a single un-steered element would deliver 1.0)\n"
            << "amplitude at Sr: " << TextTable::fmt(bf.amplitude_at(sr), 2)
            << "  (SISO reference 1.0, ideal maximum "
            << 2 * bf.num_pairs() << ")\n\n";

  // Compass sweep of one pair, ideal and with indoor multipath.
  const NullSteeringPair& pair = bf.pairs().front();
  const RadiationPattern ideal = ideal_pattern(pair, 20.0);
  const RadiationPattern indoor =
      measured_pattern(pair, 30.0, 20.0, 0.15, 0.15, 100, 3);
  SeriesChart chart("angle from array axis [deg]", ideal.angles_deg);
  chart.add_series("ideal pair pattern", ideal.amplitudes);
  chart.add_series("with indoor multipath", indoor.amplitudes);
  chart.print(std::cout);
  std::cout << "\nideal null depth " << TextTable::sci(ideal.null_depth())
            << " at " << TextTable::fmt(ideal.null_angle_deg(), 0)
            << " deg; multipath floor "
            << TextTable::fmt(indoor.null_depth(), 3) << "\n";
  return 0;
}
