// Example: the underlay image-transfer experiment end to end (§6.4).
//
// Reproduces the paper's demo in miniature: a synthetic grayscale image
// is split into 1500-byte packets, framed with CRC-32, GMSK-modulated
// and sent over the simulated indoor channel, with and without a second
// cooperating transmitter, at decreasing transmit amplitudes.  The
// recovered images are rendered as ASCII art so the "recovered with
// some distortions" / "cannot be recovered" observations are visible.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/testbed/experiments.h"

namespace {

// Coarse ASCII rendering: averages blocks of pixels to a 64x16 grid.
void render(const comimo::SyntheticImage& img, std::ostream& os) {
  const std::size_t cols = 64;
  const std::size_t rows = 16;
  static const char kRamp[] = " .:-=+*#%@";
  for (std::size_t r = 0; r < rows; ++r) {
    os << "    ";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::size_t y0 = r * img.height / rows;
      const std::size_t y1 = (r + 1) * img.height / rows;
      const std::size_t x0 = c * img.width / cols;
      const std::size_t x1 = (c + 1) * img.width / cols;
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t y = y0; y < y1; ++y) {
        for (std::size_t x = x0; x < x1; ++x) {
          const std::size_t idx = y * img.width + x;
          if (idx < img.pixels.size()) {
            sum += img.pixels[idx];
            ++n;
          }
        }
      }
      const double v = n ? sum / n : 0.0;
      os << kRamp[static_cast<std::size_t>(v / 256.0 * 9.999)];
    }
    os << "\n";
  }
}

}  // namespace

int main() {
  using namespace comimo;
  std::cout << "=== testbed image transfer (GMSK underlay) ===\n"
            << "60 packets x 1500 B per run (paper: 474), CRC-checked\n\n";

  TextTable summary({"amplitude", "mode", "PER", "mean |pixel err|",
                     "verdict"});
  for (const double amp : {800.0, 400.0}) {
    for (const bool coop : {true, false}) {
      UnderlayPerConfig cfg;
      cfg.num_packets = 60;
      cfg.amplitude = amp;
      cfg.cooperative = coop;
      cfg.seed = 11;
      const UnderlayPerResult r = run_underlay_per(cfg);
      summary.add_row(
          {TextTable::fmt(amp, 0), coop ? "cooperative" : "solo",
           TextTable::pct(r.per),
           TextTable::fmt(r.reassembly.mean_abs_error, 1),
           r.reassembly.recoverable()
               ? (r.per == 0.0 ? "perfect" : "recovered w/ distortion")
               : "unrecoverable"});
      if ((amp == 800.0 && coop) || (amp == 400.0 && !coop)) {
        std::cout << "received image (amplitude " << amp << ", "
                  << (coop ? "cooperative" : "solo") << ", PER "
                  << TextTable::pct(r.per) << "):\n";
        render(r.reassembly.image, std::cout);
        std::cout << "\n";
      }
    }
  }
  std::cout << "summary:\n";
  summary.print(std::cout);
  std::cout << "\noriginal for comparison:\n";
  render(make_test_image(60, 1500), std::cout);
  return 0;
}
