// Example: the cognitive loop around the cooperative paradigms —
// sensing the primary, grabbing spectrum holes, and adapting the rate.
//
// 1. Dimension an energy detector for a -12 dB PU at (P_fa, P_d) =
//    (0.05, 0.95) and verify it on simulated windows.
// 2. Run listen-before-talk against a bursty PU and show how the
//    sensing cadence trades secondary utilization against interference.
// 3. Inside the grabbed holes, adapt the constellation to the fading
//    channel and compare against fixed rates.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/common/units.h"
#include "comimo/numeric/rng.h"
#include "comimo/phy/link_adaptation.h"
#include "comimo/sensing/energy_detector.h"
#include "comimo/sensing/pu_activity.h"

int main() {
  using namespace comimo;
  std::cout << "=== the cognitive loop: sense, seize, adapt ===\n\n";

  // --- 1. detector dimensioning -------------------------------------------
  const double snr = db_to_linear(-12.0);
  const std::size_t n = required_samples(snr, 0.05, 0.95);
  const EnergyDetector detector(n, 1.0, 0.05);
  std::cout << "detecting a -12 dB PU at (Pfa, Pd) = (0.05, 0.95) needs "
            << n << " samples per window\n";
  Rng rng(1);
  std::size_t hits = 0;
  std::vector<cplx> window(n);
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    for (auto& s : window) {
      s = rng.complex_gaussian(1.0) + rng.complex_gaussian(snr);
    }
    hits += detector.sense(window).pu_present;
  }
  std::cout << "measured Pd over " << trials << " busy windows: "
            << TextTable::pct(static_cast<double>(hits) / trials) << "\n\n";

  // --- 2. opportunistic access --------------------------------------------
  std::cout << "listen-before-talk vs a PU with 0.5 s busy / 1.0 s idle"
               " bursts (Pd 0.95, Pfa 0.05):\n";
  TextTable access({"sensing period [ms]", "frames sent",
                    "collision fraction", "idle utilization",
                    "interference"});
  for (const double period_ms : {5.0, 20.0, 80.0}) {
    OpportunisticAccessConfig cfg;
    cfg.sensing_period_s = period_ms / 1e3;
    cfg.duration_s = 300.0;
    cfg.seed = 3;
    const auto r = simulate_opportunistic_access(cfg);
    access.add_row({TextTable::fmt(period_ms, 0),
                    std::to_string(r.frames_sent),
                    TextTable::pct(r.collision_fraction),
                    TextTable::pct(r.idle_utilization),
                    TextTable::pct(r.interference_fraction)});
  }
  access.print(std::cout);

  // --- 3. rate adaptation in the holes -------------------------------------
  std::cout << "\nadaptive MQAM inside the holes (Rayleigh, 18 dB mean,"
               " target BER 1e-3):\n";
  LinkAdaptationConfig la;
  AdaptiveLinkScenario sc;
  sc.mean_snr_db = 18.0;
  sc.blocks = 1500;
  TextTable rates({"policy", "bits/symbol", "measured BER"});
  const AdaptationRun adaptive = simulate_adaptive_link(la, sc);
  rates.add_row({"adaptive",
                 TextTable::fmt(adaptive.mean_bits_per_symbol, 2),
                 TextTable::sci(adaptive.ber)});
  for (const int b : {2, 4, 6}) {
    AdaptiveLinkScenario fixed = sc;
    fixed.fixed_b = b;
    const AdaptationRun run = simulate_adaptive_link(la, fixed);
    rates.add_row({"fixed b=" + std::to_string(b),
                   TextTable::fmt(run.mean_bits_per_symbol, 2),
                   TextTable::sci(run.ber)});
  }
  rates.print(std::cout);
  std::cout << "\nadaptation rides the fading: highest rate that still"
               " honors the BER target, block by block.\n";
  return 0;
}
