// Example: planning a cooperative relay deployment for an overlay
// cognitive radio system (§3 / Algorithm 1).
//
// Scenario: a licensed microphone link (Pt → Pr) operates over 150–350 m
// at BER 5e-3.  A cluster of m battery-powered secondary users offers to
// relay the primary traffic at 10× better BER in exchange for spectrum
// access.  For each m this program reports how far the SU cluster may
// sit from both primaries under the equal-energy rule, the per-node
// energy split across the SIMO/MISO legs, and how long a 1 J battery
// would last at a given traffic volume.
#include <iostream>

#include "comimo/common/table.h"
#include "comimo/overlay/distance_planner.h"
#include "comimo/overlay/relay_scheme.h"

int main() {
  using namespace comimo;
  std::cout << "=== overlay relay deployment planner ===\n\n";

  // Use the paper's Fig.-6 convention so MISO legs benefit from the
  // power split (see EXPERIMENTS.md on ebar conventions).
  const OverlayDistancePlanner planner(SystemParams{},
                                       EbBarConvention::kTotalEnergy);
  const OverlayRelayScheme scheme;

  std::cout << "Primary link: 250 m at BER 5e-3, B = 40 kHz; relays "
               "target BER 5e-4.\n\n";
  TextTable placement({"m", "max dist from Pt [m]", "max dist from Pr [m]",
                       "E1 budget [J/bit]", "b (SIMO/MISO)"});
  for (unsigned m = 1; m <= 4; ++m) {
    OverlayDistanceQuery q;
    q.d1_m = 250.0;
    q.num_relays = m;
    q.bandwidth_hz = 40e3;
    const OverlayDistanceResult r = planner.plan(q);
    placement.add_row({std::to_string(m), TextTable::fmt(r.d2_m, 1),
                       TextTable::fmt(r.d3_m, 1), TextTable::sci(r.e1),
                       std::to_string(r.b2) + "/" + std::to_string(r.b3)});
  }
  placement.print(std::cout);

  // Detailed energy ledger for the chosen deployment (m = 3, placed at
  // 200 m from Pt and 300 m from Pr — inside the feasible region).
  std::cout << "\nEnergy ledger for m = 3 relays at (200 m, 300 m):\n";
  OverlayRelayConfig cfg;
  cfg.num_relays = 3;
  cfg.pt_to_su_m = 200.0;
  cfg.su_to_pr_m = 300.0;
  cfg.ber = 5e-4;
  cfg.bandwidth_hz = 40e3;
  const OverlayRelayEnergies e = scheme.plan(cfg);
  TextTable ledger({"party", "role", "energy [J/bit]"});
  ledger.add_row({"Pt", "SIMO transmit (b=" + std::to_string(e.b_simo) + ")",
                  TextTable::sci(e.e_pt)});
  ledger.add_row({"each SU", "SIMO receive", TextTable::sci(e.e_su_rx)});
  ledger.add_row({"each SU", "MISO transmit (b=" + std::to_string(e.b_miso) + ")",
                  TextTable::sci(e.e_su_tx)});
  ledger.add_row({"each SU", "total relay cost", TextTable::sci(e.e_su_total())});
  ledger.add_row({"Pr", "MISO receive", TextTable::sci(e.e_pr)});
  ledger.print(std::cout);

  const double battery_j = 1.0;
  const double mbits_per_day = 10.0;
  const double joules_per_day = e.e_su_total() * mbits_per_day * 1e6;
  std::cout << "\nAt " << mbits_per_day
            << " Mbit/day of relayed primary traffic each SU spends "
            << TextTable::sci(joules_per_day) << " J/day -> a "
            << battery_j << " J budget lasts "
            << TextTable::fmt(battery_j / joules_per_day, 1) << " days.\n";
  return 0;
}
